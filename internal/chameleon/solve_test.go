package chameleon

import (
	"math/rand"
	"testing"

	"repro/internal/linalg"
	"repro/internal/starpu"
)

func TestGetrfNumericMatchesReference(t *testing.T) {
	for _, n := range []int{48, 52} {
		rt := newRuntime(t)
		rng := rand.New(rand.NewSource(20))
		d, _ := NewDesc[float64](rt, n, 16, true)
		full := linalg.NewDiagonallyDominant[float64](n, rng)
		if err := d.Scatter(full); err != nil {
			t.Fatal(err)
		}
		if err := Getrf(rt, d); err != nil {
			t.Fatal(err)
		}
		if err := rt.RunNumeric(8); err != nil {
			t.Fatal(err)
		}
		lu, err := d.Gather()
		if err != nil {
			t.Fatal(err)
		}
		back := linalg.LURecompose(lu)
		if !linalg.Equalish(back, full, 1e-8) {
			t.Errorf("n=%d: tiled LU recompose max diff %g", n, linalg.MaxAbsDiff(back, full))
		}
		// Against the unblocked reference factorisation.
		ref := full.Clone()
		if err := linalg.GetrfNoPiv(ref); err != nil {
			t.Fatal(err)
		}
		if !linalg.Equalish(lu, ref, 1e-8) {
			t.Errorf("n=%d: tiled LU differs from unblocked: %g", n, linalg.MaxAbsDiff(lu, ref))
		}
	}
}

func TestGetrfTaskCount(t *testing.T) {
	rt := newRuntime(t)
	d, _ := NewDesc[float64](rt, 64, 16, false) // nt = 4
	if err := Getrf(rt, d); err != nil {
		t.Fatal(err)
	}
	// nt getrf + 2*sum(nt-k-1) trsm + sum (nt-k-1)^2 gemm
	want := 0
	nt := 4
	for k := 0; k < nt; k++ {
		r := nt - k - 1
		want += 1 + 2*r + r*r
	}
	if got := len(rt.Tasks()); got != want {
		t.Errorf("getrf task count = %d, want %d", got, want)
	}
}

func TestGetrfPanelOnCPU(t *testing.T) {
	rt := newRuntime(t)
	d, _ := NewDesc[float64](rt, 5760*3, 5760, false)
	if err := Getrf(rt, d); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	for _, tk := range rt.Tasks() {
		if tk.Codelet.Name == "dgetrf" && rt.Workers()[tk.WorkerID].Info.Kind != starpu.CPUWorker {
			t.Errorf("%s ran on a GPU", tk.Tag)
		}
	}
}

func TestPosvSolvesSystem(t *testing.T) {
	rt := newRuntime(t)
	rng := rand.New(rand.NewSource(21))
	const n, nb, m = 48, 16, 48
	a, _ := NewDesc[float64](rt, n, nb, true)
	b, _ := NewDesc[float64](rt, n, nb, true)
	spd := linalg.NewSPD[float64](n, rng)
	if err := a.Scatter(spd); err != nil {
		t.Fatal(err)
	}
	x := linalg.NewRandom[float64](n, m, rng)
	rhs := linalg.NewMat[float64](n, m)
	linalg.Gemm(linalg.NoTrans, linalg.NoTrans, 1, spd, x, 0, rhs)
	if err := b.Scatter(rhs); err != nil {
		t.Fatal(err)
	}
	if err := Posv(rt, a, b); err != nil {
		t.Fatal(err)
	}
	if err := rt.RunNumeric(8); err != nil {
		t.Fatal(err)
	}
	got, err := b.Gather()
	if err != nil {
		t.Fatal(err)
	}
	if !linalg.Equalish(got, x, 1e-8) {
		t.Errorf("posv solution max diff %g", linalg.MaxAbsDiff(got, x))
	}
}

func TestPotrsDescriptorMismatch(t *testing.T) {
	rt := newRuntime(t)
	a, _ := NewDesc[float64](rt, 32, 16, false)
	b, _ := NewDesc[float64](rt, 32, 8, false)
	if err := Potrs(rt, a, b); err == nil {
		t.Error("mismatched descriptors accepted")
	}
}

// TestPosvSimulated runs the solver DAG through the energy simulation:
// the combined factor+solve completes and uses both worker kinds.
func TestPosvSimulated(t *testing.T) {
	rt := newRuntime(t)
	a, _ := NewDesc[float64](rt, 2880*8, 2880, false)
	b, _ := NewDesc[float64](rt, 2880*8, 2880, false)
	if err := Posv(rt, a, b); err != nil {
		t.Fatal(err)
	}
	makespan, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if makespan <= 0 {
		t.Fatal("no makespan")
	}
	kinds := map[starpu.WorkerKind]int{}
	for _, tk := range rt.Tasks() {
		kinds[rt.Workers()[tk.WorkerID].Info.Kind]++
	}
	if kinds[starpu.CPUWorker] == 0 || kinds[starpu.CUDAWorker] == 0 {
		t.Errorf("kind distribution = %v, want both used", kinds)
	}
}

func TestGesvSolvesSystem(t *testing.T) {
	rt := newRuntime(t)
	rng := rand.New(rand.NewSource(22))
	const n, nb = 48, 16
	a, _ := NewDesc[float64](rt, n, nb, true)
	b, _ := NewDesc[float64](rt, n, nb, true)
	full := linalg.NewDiagonallyDominant[float64](n, rng)
	if err := a.Scatter(full); err != nil {
		t.Fatal(err)
	}
	x := linalg.NewRandom[float64](n, n, rng)
	rhs := linalg.NewMat[float64](n, n)
	linalg.Gemm(linalg.NoTrans, linalg.NoTrans, 1, full, x, 0, rhs)
	if err := b.Scatter(rhs); err != nil {
		t.Fatal(err)
	}
	if err := Gesv(rt, a, b); err != nil {
		t.Fatal(err)
	}
	if err := rt.RunNumeric(8); err != nil {
		t.Fatal(err)
	}
	got, err := b.Gather()
	if err != nil {
		t.Fatal(err)
	}
	if !linalg.Equalish(got, x, 1e-7) {
		t.Errorf("gesv solution max diff %g", linalg.MaxAbsDiff(got, x))
	}
}

func TestGetrsDescriptorMismatch(t *testing.T) {
	rt := newRuntime(t)
	a, _ := NewDesc[float64](rt, 32, 16, false)
	b, _ := NewDesc[float64](rt, 48, 16, false)
	if err := Getrs(rt, a, b); err == nil {
		t.Error("mismatched descriptors accepted")
	}
}

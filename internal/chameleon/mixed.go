package chameleon

import (
	"fmt"

	"repro/internal/prec"
	"repro/internal/starpu"
	"repro/internal/units"
)

// Mixed-precision solver — the paper's future work ("mixed precision
// computations as a complementary way to find the best trade-off
// between raw performance and energy consumption").  PosvMixed solves
// the SPD system A X = B in double precision accuracy while doing the
// O(n^3) factorisation in single precision: classical iterative
// refinement.  Single-precision kernels are both faster and more
// energy-efficient on every modelled GPU, so the energy win compounds
// with power capping.

// mixedCodelet builds the small memory-bound helper codelets (precision
// demote/promote, tile copy, accumulate).  They are cheap relative to
// the O(nb^3) kernels; their cost model is bandwidth-flavoured via a
// low efficiency factor.
func mixedCodelet(name string, p prec.Precision) *starpu.Codelet {
	return &starpu.Codelet{
		Name: name, Precision: p,
		CanCPU: true, CanCUDA: true,
		GPUEfficiency: 0.05, CPUEfficiency: 0.20,
	}
}

// PosvMixed factors a copy of aD in single precision, solves for bD's
// right-hand sides, and applies `iters` double-precision refinement
// steps.  On completion (numeric mode) bD holds X to double accuracy
// (for reasonably conditioned A).  aD is left untouched.
func PosvMixed(rt *starpu.Runtime, aD, bD *Desc[float64], iters int) error {
	if !aD.Square() || aD.N != bD.M || aD.NB != bD.NB {
		return fmt.Errorf("chameleon: posv_mixed descriptor mismatch (A %dx%d/%d, B %dx%d/%d)", aD.M, aD.N, aD.NB, bD.M, bD.N, bD.NB)
	}
	if iters < 0 {
		return fmt.Errorf("chameleon: posv_mixed negative refinement count %d", iters)
	}
	n, nb := aD.N, aD.NB
	numeric := aD.Numeric()

	aS, err := NewDesc[float32](rt, n, nb, numeric)
	if err != nil {
		return err
	}
	workS, err := NewDescRect[float32](rt, bD.M, bD.N, nb, numeric)
	if err != nil {
		return err
	}
	xD, err := NewDescRect[float64](rt, bD.M, bD.N, nb, numeric)
	if err != nil {
		return err
	}
	rD, err := NewDescRect[float64](rt, bD.M, bD.N, nb, numeric)
	if err != nil {
		return err
	}

	clDemote := mixedCodelet("dlag2s", prec.Single)
	clPromote := mixedCodelet("slag2d", prec.Double)
	clCopy := mixedCodelet("dlacpy", prec.Double)
	clAdd := mixedCodelet("sgeadd", prec.Double)
	tileWork := func(i, j int) units.Flops {
		return units.Flops(float64(bD.TileRows(i%bD.MT)) * float64(bD.TileCols(j%bD.NT)))
	}

	// forEachTile submits one elementwise task per tile of an mt x nt grid.
	forEachTile := func(mt, nt int, cl *starpu.Codelet, tag string, handles func(i, j int) ([]*starpu.Handle, []starpu.AccessMode), fn func(i, j int) func() error) error {
		for i := 0; i < mt; i++ {
			for j := 0; j < nt; j++ {
				hs, modes := handles(i, j)
				t := &starpu.Task{
					Codelet: cl, Handles: hs, Modes: modes,
					Work: tileWork(i, j),
					Tag:  fmt.Sprintf("%s(%d,%d)", tag, i, j),
				}
				if numeric {
					t.Func = fn(i, j)
				}
				if err := rt.Submit(t); err != nil {
					return err
				}
			}
		}
		return nil
	}
	demote := func(src *Desc[float64], dst *Desc[float32], tag string) error {
		return forEachTile(src.MT, src.NT, clDemote, tag,
			func(i, j int) ([]*starpu.Handle, []starpu.AccessMode) {
				return []*starpu.Handle{src.Handle(i, j), dst.Handle(i, j)}, []starpu.AccessMode{starpu.R, starpu.W}
			},
			func(i, j int) func() error {
				return func() error {
					s, d := src.Tile(i, j), dst.Tile(i, j)
					for r := 0; r < s.Rows; r++ {
						sr, dr := s.Row(r), d.Row(r)
						for c := range sr {
							dr[c] = float32(sr[c])
						}
					}
					return nil
				}
			})
	}

	// 1. aS = float32(aD); factor it once.
	if err := demote(aD, aS, "lag2s_A"); err != nil {
		return err
	}
	if err := Potrf(rt, aS); err != nil {
		return err
	}

	// 2. Initial solve: workS = float32(bD); L-solve; xD = float64(workS).
	if err := demote(bD, workS, "lag2s_b"); err != nil {
		return err
	}
	if err := Potrs(rt, aS, workS); err != nil {
		return err
	}
	if err := forEachTile(workS.MT, workS.NT, clPromote, "slag2d_x",
		func(i, j int) ([]*starpu.Handle, []starpu.AccessMode) {
			return []*starpu.Handle{workS.Handle(i, j), xD.Handle(i, j)}, []starpu.AccessMode{starpu.R, starpu.W}
		},
		func(i, j int) func() error {
			return func() error {
				s, d := workS.Tile(i, j), xD.Tile(i, j)
				for r := 0; r < s.Rows; r++ {
					sr, dr := s.Row(r), d.Row(r)
					for c := range sr {
						dr[c] = float64(sr[c])
					}
				}
				return nil
			}
		}); err != nil {
		return err
	}

	// 3. Refinement: r = b - A x (double); correct x by the
	// single-precision solve of A d = r.
	for it := 0; it < iters; it++ {
		if err := forEachTile(bD.MT, bD.NT, clCopy, fmt.Sprintf("lacpy_r%d", it),
			func(i, j int) ([]*starpu.Handle, []starpu.AccessMode) {
				return []*starpu.Handle{bD.Handle(i, j), rD.Handle(i, j)}, []starpu.AccessMode{starpu.R, starpu.W}
			},
			func(i, j int) func() error {
				return func() error {
					s, d := bD.Tile(i, j), rD.Tile(i, j)
					for r := 0; r < s.Rows; r++ {
						copy(d.Row(r), s.Row(r))
					}
					return nil
				}
			}); err != nil {
			return err
		}
		if err := Gemm(rt, -1.0, aD, xD, 1.0, rD); err != nil {
			return err
		}
		if err := demote(rD, workS, fmt.Sprintf("lag2s_r%d", it)); err != nil {
			return err
		}
		if err := Potrs(rt, aS, workS); err != nil {
			return err
		}
		if err := forEachTile(workS.MT, workS.NT, clAdd, fmt.Sprintf("geadd_x%d", it),
			func(i, j int) ([]*starpu.Handle, []starpu.AccessMode) {
				return []*starpu.Handle{workS.Handle(i, j), xD.Handle(i, j)}, []starpu.AccessMode{starpu.R, starpu.RW}
			},
			func(i, j int) func() error {
				return func() error {
					s, d := workS.Tile(i, j), xD.Tile(i, j)
					for r := 0; r < s.Rows; r++ {
						sr, dr := s.Row(r), d.Row(r)
						for c := range sr {
							dr[c] += float64(sr[c])
						}
					}
					return nil
				}
			}); err != nil {
			return err
		}
	}

	// 4. Deliver the solution in bD, matching Posv's contract.
	return forEachTile(xD.MT, xD.NT, clCopy, "lacpy_out",
		func(i, j int) ([]*starpu.Handle, []starpu.AccessMode) {
			return []*starpu.Handle{xD.Handle(i, j), bD.Handle(i, j)}, []starpu.AccessMode{starpu.R, starpu.W}
		},
		func(i, j int) func() error {
			return func() error {
				s, d := xD.Tile(i, j), bD.Tile(i, j)
				for r := 0; r < s.Rows; r++ {
					copy(d.Row(r), s.Row(r))
				}
				return nil
			}
		})
}

package chameleon

import (
	"sync"

	"repro/internal/prec"
	"repro/internal/starpu"
)

// Kernel efficiency factors relative to the device's GEMM curve.  GPU
// panel factorisation is so inefficient that Chameleon runs POTRF tiles
// on the CPU only — the paper leans on this ("the critical path comprises
// numerous tasks that are executed on the CPU").
const (
	gpuEffGemm = 1.00
	gpuEffSyrk = 0.90
	gpuEffTrsm = 0.65
	cpuEffGemm = 1.00
	cpuEffSyrk = 0.95
	cpuEffTrsm = 0.90
	cpuEffPotf = 0.80
)

var (
	codeletOnce sync.Once
	codelets    map[string]*starpu.Codelet
)

func buildCodelets() {
	codelets = make(map[string]*starpu.Codelet)
	for _, p := range prec.All {
		pre := p.BLASPrefix()
		codelets[pre+"gemm"] = &starpu.Codelet{
			Name: pre + "gemm", Precision: p,
			CanCPU: true, CanCUDA: true,
			GPUEfficiency: gpuEffGemm, CPUEfficiency: cpuEffGemm,
		}
		codelets[pre+"syrk"] = &starpu.Codelet{
			Name: pre + "syrk", Precision: p,
			CanCPU: true, CanCUDA: true,
			GPUEfficiency: gpuEffSyrk, CPUEfficiency: cpuEffSyrk,
		}
		codelets[pre+"trsm"] = &starpu.Codelet{
			Name: pre + "trsm", Precision: p,
			CanCPU: true, CanCUDA: true,
			GPUEfficiency: gpuEffTrsm, CPUEfficiency: cpuEffTrsm,
		}
		codelets[pre+"potrf"] = &starpu.Codelet{
			Name: pre + "potrf", Precision: p,
			CanCPU: true, CanCUDA: false, // LAPACK panel on the host
			CPUEfficiency: cpuEffPotf,
		}
		codelets[pre+"getrf"] = &starpu.Codelet{
			Name: pre + "getrf", Precision: p,
			CanCPU: true, CanCUDA: false, // LAPACK panel on the host
			CPUEfficiency: cpuEffPotf,
		}
		// Tile QR kernels: panels on the host, reflector application on
		// either side (GPUs run LARFB-style updates below GEMM rates).
		codelets[pre+"geqrt"] = &starpu.Codelet{
			Name: pre + "geqrt", Precision: p,
			CanCPU: true, CPUEfficiency: 0.70,
		}
		codelets[pre+"tsqrt"] = &starpu.Codelet{
			Name: pre + "tsqrt", Precision: p,
			CanCPU: true, CPUEfficiency: 0.75,
		}
		codelets[pre+"unmqr"] = &starpu.Codelet{
			Name: pre + "unmqr", Precision: p,
			CanCPU: true, CanCUDA: true,
			GPUEfficiency: 0.60, CPUEfficiency: 0.90,
		}
		codelets[pre+"tsmqr"] = &starpu.Codelet{
			Name: pre + "tsmqr", Precision: p,
			CanCPU: true, CanCUDA: true,
			GPUEfficiency: 0.60, CPUEfficiency: 0.90,
		}
	}
}

// Codelet returns the shared codelet for a kernel name ("dgemm",
// "spotrf", ...), or nil for unknown names.
func Codelet(name string) *starpu.Codelet {
	codeletOnce.Do(buildCodelets)
	return codelets[name]
}

// codeletFor composes the per-precision kernel name.
func codeletFor(p prec.Precision, kernel string) *starpu.Codelet {
	return Codelet(p.BLASPrefix() + kernel)
}

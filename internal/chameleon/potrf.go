package chameleon

import (
	"fmt"

	"repro/internal/linalg"
	"repro/internal/starpu"
	"repro/internal/units"
)

// Potrf submits the right-looking tile Cholesky factorisation of the
// SPD matrix held in a (lower variant): on completion (numeric mode) the
// lower triangle of a holds L with A = L*Lᵀ.
//
// Per step k:
//
//	POTRF(k):    A[k][k] = chol(A[k][k])                      (CPU only)
//	TRSM(i,k):   A[i][k] = A[i][k] * A[k][k]⁻ᵀ        i > k
//	SYRK(i,k):   A[i][i] -= A[i][k] * A[i][k]ᵀ         i > k
//	GEMM(i,j,k): A[i][j] -= A[i][k] * A[j][k]ᵀ     i > j > k
//
// The DAG has N(N+1)(N+2)/6 vertices for an N x N tile matrix, GEMM
// tasks making up roughly half (§III-C).  Priorities implement the
// expert scheme the paper credits to Chameleon: tasks of earlier panels
// dominate, and within a panel POTRF > TRSM > SYRK > GEMM, pushing the
// critical path ahead of trailing updates.
func Potrf[T linalg.Float](rt *starpu.Runtime, a *Desc[T]) error {
	if !a.Square() {
		return fmt.Errorf("chameleon: potrf on %dx%d descriptor", a.M, a.N)
	}
	nt := a.NT
	p := PrecisionOf[T]()
	clPotrf := codeletFor(p, "potrf")
	clTrsm := codeletFor(p, "trsm")
	clSyrk := codeletFor(p, "syrk")
	clGemm := codeletFor(p, "gemm")

	prio := func(step, class int) int {
		// class: 3 potrf, 2 trsm, 1 syrk, 0 gemm.
		return ((nt - step) << 2) + class
	}

	for k := 0; k < nt; k++ {
		k := k
		tp := &starpu.Task{
			Codelet:  clPotrf,
			Handles:  []*starpu.Handle{a.Handle(k, k)},
			Modes:    []starpu.AccessMode{starpu.RW},
			Work:     units.Flops(linalg.PotrfFlops(a.TileDim(k))),
			Priority: prio(k, 3),
			Tag:      fmt.Sprintf("potrf(%d)", k),
		}
		if a.Numeric() {
			tp.Func = func() error { return linalg.PotrfLower(a.Tile(k, k)) }
		}
		if err := rt.Submit(tp); err != nil {
			return err
		}
		for i := k + 1; i < nt; i++ {
			i := i
			tt := &starpu.Task{
				Codelet:  clTrsm,
				Handles:  []*starpu.Handle{a.Handle(k, k), a.Handle(i, k)},
				Modes:    []starpu.AccessMode{starpu.R, starpu.RW},
				Work:     units.Flops(linalg.TrsmFlops(a.TileDim(i), a.TileDim(k))),
				Priority: prio(k, 2),
				Tag:      fmt.Sprintf("trsm(%d,%d)", i, k),
			}
			if a.Numeric() {
				tt.Func = func() error {
					linalg.TrsmRightLowerTransNonUnit[T](1, a.Tile(k, k), a.Tile(i, k))
					return nil
				}
			}
			if err := rt.Submit(tt); err != nil {
				return err
			}
		}
		for i := k + 1; i < nt; i++ {
			i := i
			ts := &starpu.Task{
				Codelet:  clSyrk,
				Handles:  []*starpu.Handle{a.Handle(i, k), a.Handle(i, i)},
				Modes:    []starpu.AccessMode{starpu.R, starpu.RW},
				Work:     units.Flops(linalg.SyrkFlops(a.TileDim(i), a.TileDim(k))),
				Priority: prio(k, 1),
				Tag:      fmt.Sprintf("syrk(%d,%d)", i, k),
			}
			if a.Numeric() {
				ts.Func = func() error {
					linalg.SyrkLowerNT[T](-1, a.Tile(i, k), 1, a.Tile(i, i))
					return nil
				}
			}
			if err := rt.Submit(ts); err != nil {
				return err
			}
			for j := k + 1; j < i; j++ {
				j := j
				tg := &starpu.Task{
					Codelet:  clGemm,
					Handles:  []*starpu.Handle{a.Handle(i, k), a.Handle(j, k), a.Handle(i, j)},
					Modes:    []starpu.AccessMode{starpu.R, starpu.R, starpu.RW},
					Work:     units.Flops(linalg.GemmFlops(a.TileDim(i), a.TileDim(j), a.TileDim(k))),
					Priority: prio(k, 0),
					Tag:      fmt.Sprintf("gemm(%d,%d,%d)", i, j, k),
				}
				if a.Numeric() {
					tg.Func = func() error {
						linalg.Gemm[T](linalg.NoTrans, linalg.Trans, -1, a.Tile(i, k), a.Tile(j, k), 1, a.Tile(i, j))
						return nil
					}
				}
				if err := rt.Submit(tg); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// PotrfFlops reports the total flop count of an N x N Cholesky (N^3/3).
func PotrfFlops(n int) units.Flops {
	f := float64(n)
	return units.Flops(f * f * f / 3)
}

// PotrfTaskCount reports the DAG size for an nt x nt tile matrix:
// nt(nt+1)(nt+2)/6 vertices (§III-C).
func PotrfTaskCount(nt int) int {
	return nt * (nt + 1) * (nt + 2) / 6
}

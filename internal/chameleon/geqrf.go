package chameleon

import (
	"fmt"

	"repro/internal/linalg"
	"repro/internal/starpu"
	"repro/internal/units"
)

// Geqrf submits the tile QR factorisation (flat reduction tree, the
// Chameleon default): on completion (numeric mode) the upper triangle
// of a holds R and the lower tiles hold the Householder vectors; the
// returned workspace holds the tau factors.
//
// Per step k:
//
//	GEQRT(k):     QR of A[k][k]                              (CPU only)
//	UNMQR(k,j):   A[k][j] = Q_kᵀ A[k][j]              j > k
//	TSQRT(i,k):   QR of [R_kk; A[i][k]]               i > k  (CPU only)
//	TSMQR(i,j):   [A[k][j]; A[i][j]] = Q_ikᵀ [...]   i,j > k
//
// The TSQRT chain reads-writes A[k][k], serialising the panel exactly
// as the flat-tree algorithm requires.
func Geqrf[T linalg.Float](rt *starpu.Runtime, a *Desc[T]) (*QRWork[T], error) {
	if !a.Square() {
		return nil, fmt.Errorf("chameleon: geqrf on %dx%d descriptor", a.M, a.N)
	}
	if a.N%a.NB != 0 {
		return nil, fmt.Errorf("chameleon: geqrf requires NB (%d) to divide N (%d)", a.NB, a.N)
	}
	nt := a.NT
	nb := a.NB
	p := PrecisionOf[T]()
	clGeqrt := codeletFor(p, "geqrt")
	clUnmqr := codeletFor(p, "unmqr")
	clTsqrt := codeletFor(p, "tsqrt")
	clTsmqr := codeletFor(p, "tsmqr")

	w := newQRWork[T](rt, a)
	prio := func(step, class int) int { return ((nt - step) << 2) + class }

	for k := 0; k < nt; k++ {
		k := k
		tg := &starpu.Task{
			Codelet:  clGeqrt,
			Handles:  []*starpu.Handle{a.Handle(k, k), w.panelTau[k].handle},
			Modes:    []starpu.AccessMode{starpu.RW, starpu.W},
			Work:     units.Flops(linalg.GeqrtFlops(nb)),
			Priority: prio(k, 3),
			Tag:      fmt.Sprintf("geqrt(%d)", k),
		}
		if a.Numeric() {
			tg.Func = func() error {
				linalg.Geqr2(a.Tile(k, k), w.panelTau[k].tau)
				return nil
			}
		}
		if err := rt.Submit(tg); err != nil {
			return nil, err
		}
		for j := k + 1; j < nt; j++ {
			j := j
			tu := &starpu.Task{
				Codelet:  clUnmqr,
				Handles:  []*starpu.Handle{a.Handle(k, k), w.panelTau[k].handle, a.Handle(k, j)},
				Modes:    []starpu.AccessMode{starpu.R, starpu.R, starpu.RW},
				Work:     units.Flops(linalg.UnmqrFlops(nb)),
				Priority: prio(k, 2),
				Tag:      fmt.Sprintf("unmqr(%d,%d)", k, j),
			}
			if a.Numeric() {
				tu.Func = func() error {
					linalg.Orm2rLeftTrans(a.Tile(k, k), w.panelTau[k].tau, a.Tile(k, j))
					return nil
				}
			}
			if err := rt.Submit(tu); err != nil {
				return nil, err
			}
		}
		for i := k + 1; i < nt; i++ {
			i := i
			ts := &starpu.Task{
				Codelet:  clTsqrt,
				Handles:  []*starpu.Handle{a.Handle(k, k), a.Handle(i, k), w.tsTau[i][k].handle},
				Modes:    []starpu.AccessMode{starpu.RW, starpu.RW, starpu.W},
				Work:     units.Flops(linalg.TsqrtFlops(nb)),
				Priority: prio(k, 2),
				Tag:      fmt.Sprintf("tsqrt(%d,%d)", i, k),
			}
			if a.Numeric() {
				ts.Func = func() error {
					linalg.Tsqrt(a.Tile(k, k), a.Tile(i, k), w.tsTau[i][k].tau)
					return nil
				}
			}
			if err := rt.Submit(ts); err != nil {
				return nil, err
			}
			for j := k + 1; j < nt; j++ {
				j := j
				tm := &starpu.Task{
					Codelet: clTsmqr,
					Handles: []*starpu.Handle{
						a.Handle(i, k), w.tsTau[i][k].handle,
						a.Handle(k, j), a.Handle(i, j),
					},
					Modes:    []starpu.AccessMode{starpu.R, starpu.R, starpu.RW, starpu.RW},
					Work:     units.Flops(linalg.TsmqrFlops(nb)),
					Priority: prio(k, 1),
					Tag:      fmt.Sprintf("tsmqr(%d,%d,%d)", i, j, k),
				}
				if a.Numeric() {
					tm.Func = func() error {
						linalg.Tsmqr(a.Tile(i, k), w.tsTau[i][k].tau, a.Tile(k, j), a.Tile(i, j))
						return nil
					}
				}
				if err := rt.Submit(tm); err != nil {
					return nil, err
				}
			}
		}
	}
	return w, nil
}

// QRWork holds the tau factors of a tile QR factorisation.
type QRWork[T linalg.Float] struct {
	panelTau []tauStore[T]   // per diagonal step k
	tsTau    [][]tauStore[T] // per (i, k), i > k
}

type tauStore[T linalg.Float] struct {
	handle *starpu.Handle
	tau    []T
}

func newQRWork[T linalg.Float](rt *starpu.Runtime, a *Desc[T]) *QRWork[T] {
	nt, nb := a.NT, a.NB
	elem := PrecisionOf[T]().Bytes()
	w := &QRWork[T]{
		panelTau: make([]tauStore[T], nt),
		tsTau:    make([][]tauStore[T], nt),
	}
	mk := func() tauStore[T] {
		var tau []T
		var data interface{}
		if a.Numeric() {
			tau = make([]T, nb)
			data = tau
		}
		return tauStore[T]{handle: rt.Register(data, elem, nb), tau: tau}
	}
	for k := 0; k < nt; k++ {
		w.panelTau[k] = mk()
		w.tsTau[k] = make([]tauStore[T], nt)
	}
	for i := 1; i < nt; i++ {
		for k := 0; k < i; k++ {
			w.tsTau[i][k] = mk()
		}
	}
	return w
}

// PanelTau exposes step k's tau vector (numeric mode; nil otherwise).
func (w *QRWork[T]) PanelTau(k int) []T { return w.panelTau[k].tau }

// GeqrfFlops reports the total QR work for an N x N matrix (4N^3/3).
func GeqrfFlops(n int) units.Flops {
	return units.Flops(linalg.GeqrfFlops(n))
}

// GeqrfTaskCount reports the DAG size for an nt x nt tile matrix.
func GeqrfTaskCount(nt int) int {
	n := 0
	for k := 0; k < nt; k++ {
		r := nt - k - 1
		n += 1 + r + r + r*r
	}
	return n
}

package faults

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseNetSpecRoundTrip(t *testing.T) {
	spec, err := ParseNetSpec("drop=0.05,dropreply=0.1,dup=0.05,err=0.05,delay=20ms")
	if err != nil {
		t.Fatal(err)
	}
	want := NetSpec{Drop: 0.05, DropReply: 0.1, Dup: 0.05, Err: 0.05, DelayMax: 20 * time.Millisecond}
	if spec != want {
		t.Fatalf("parsed %+v, want %+v", spec, want)
	}
	// The rendered canonical form parses back to the same spec.
	again, err := ParseNetSpec(spec.String())
	if err != nil {
		t.Fatal(err)
	}
	if again != spec {
		t.Fatalf("round trip %q -> %+v, want %+v", spec.String(), again, spec)
	}
	for _, s := range []string{"", "none"} {
		spec, err := ParseNetSpec(s)
		if err != nil || !spec.Zero() {
			t.Fatalf("ParseNetSpec(%q) = %+v, %v; want zero", s, spec, err)
		}
	}
	for _, bad := range []string{
		"drop",             // not key=value
		"boost=0.5",        // unknown key
		"drop=1.5",         // probability outside [0,1]
		"drop=-0.1",        // negative
		"delay=-5ms",       // negative delay
		"drop=0.6,dup=0.6", // modes sum past 1
	} {
		if _, err := ParseNetSpec(bad); err == nil {
			t.Errorf("ParseNetSpec(%q) accepted, want error", bad)
		}
	}
}

// TestNetInjectorDeterministic: two injectors with the same spec and
// seed produce the same fault schedule for the same request stream.
func TestNetInjectorDeterministic(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	spec := NetSpec{Drop: 0.2, DropReply: 0.2, Dup: 0.2, Err: 0.2}
	run := func(seed int64) []string {
		inj := NewNetInjector(spec, seed, nil)
		client := &http.Client{Transport: inj}
		var outcomes []string
		for i := 0; i < 64; i++ {
			resp, err := client.Post(srv.URL, "text/plain", strings.NewReader("ping"))
			switch {
			case err != nil:
				outcomes = append(outcomes, "err")
			case resp.StatusCode != http.StatusOK:
				outcomes = append(outcomes, "503")
				resp.Body.Close()
			default:
				outcomes = append(outcomes, "ok")
				resp.Body.Close()
			}
		}
		return outcomes
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outcome %d differs between same-seed runs: %q vs %q", i, a[i], b[i])
		}
	}
	if c := run(43); strings.Join(a, ",") == strings.Join(c, ",") {
		t.Fatal("different seeds produced identical 64-request schedules")
	}
}

// TestNetInjectorModes pins each mode's observable contract: dup
// delivers twice, err never delivers, dropreply delivers but loses the
// response, drop delivers nothing and errors.
func TestNetInjectorModes(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		if string(b) != "payload" {
			t.Errorf("server saw body %q, want %q", b, "payload")
		}
		hits.Add(1)
		w.Write([]byte("ok"))
	}))
	defer srv.Close()
	post := func(inj *NetInjector) (*http.Response, error) {
		client := &http.Client{Transport: inj}
		return client.Post(srv.URL, "text/plain", bytes.NewReader([]byte("payload")))
	}

	// dup=1: one logical request, two deliveries, one (valid) response.
	hits.Store(0)
	resp, err := post(NewNetInjector(NetSpec{Dup: 1}, 1, nil))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("dup: resp=%v err=%v", resp, err)
	}
	resp.Body.Close()
	if hits.Load() != 2 {
		t.Fatalf("dup: server saw %d deliveries, want 2", hits.Load())
	}

	// err=1: synthetic 503, zero deliveries.
	hits.Store(0)
	resp, err = post(NewNetInjector(NetSpec{Err: 1}, 1, nil))
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("err: resp=%v err=%v", resp, err)
	}
	resp.Body.Close()
	if hits.Load() != 0 {
		t.Fatalf("err: server saw %d deliveries, want 0", hits.Load())
	}

	// dropreply=1: delivered (the server-side effect stands), response lost.
	hits.Store(0)
	if _, err = post(NewNetInjector(NetSpec{DropReply: 1}, 1, nil)); err == nil {
		t.Fatal("dropreply: want a transport error")
	}
	if hits.Load() != 1 {
		t.Fatalf("dropreply: server saw %d deliveries, want 1", hits.Load())
	}

	// drop=1: lost before delivery.
	hits.Store(0)
	if _, err = post(NewNetInjector(NetSpec{Drop: 1}, 1, nil)); err == nil {
		t.Fatal("drop: want a transport error")
	}
	if hits.Load() != 0 {
		t.Fatalf("drop: server saw %d deliveries, want 0", hits.Load())
	}

	// Stats reflect what was injected.
	inj := NewNetInjector(NetSpec{Drop: 1}, 1, nil)
	post(inj)
	post(inj)
	if s := inj.Stats(); s.Requests != 2 || s.Dropped != 2 {
		t.Fatalf("stats = %+v, want 2 requests / 2 dropped", s)
	}
}

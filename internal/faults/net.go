// Wire-level fault injection: a seeded http.RoundTripper that delays,
// drops, duplicates and 5xx-poisons requests between sweep-service
// processes.  It exists to *prove* the dispatch protocol is idempotent
// — a duplicated Report must stay first-result-wins, a retried Acquire
// must never double-lease beyond MaxHolders, a replayed Submit must
// not enqueue twice — by making the network misbehave reproducibly.
//
// Determinism model.  All randomness comes from one rand.Rand seeded
// at construction, consumed in a fixed per-request draw order (delay
// first, then one cumulative mode draw) under a mutex.  For a serial
// request stream the fault schedule is therefore a pure function of
// (spec, seed); under concurrent callers it is seeded but
// arrival-order dependent — still reproducible enough to shake out
// protocol bugs, and the protocol invariants the chaos tests assert
// must hold under *any* schedule.
//
// The four modes model distinct wire failures, because they stress
// different halves of an exchange:
//
//   - drop: the request is lost before delivery — the server never
//     sees it, the client sees a transport error and retries.
//   - dropreply: the request is delivered and processed but the
//     response is lost — the client retries a request the server
//     already acted on.  This is the mode that forces idempotency.
//   - dup: the request is delivered twice back-to-back (a retrying
//     proxy); the client sees only the second response.
//   - err: the server is never reached; the client sees a synthetic
//     503 burst and must treat it as retryable.
package faults

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// NetSpec declares a wire fault mix.  The zero value injects nothing.
type NetSpec struct {
	// Drop is the probability a request is lost before delivery.
	Drop float64
	// DropReply is the probability a delivered request's response is
	// lost on the way back (the server-side effect stands).
	DropReply float64
	// Dup is the probability a request is delivered twice.
	Dup float64
	// Err is the probability of a synthetic 503 without delivery.
	Err float64
	// DelayMax bounds a uniform [0, DelayMax) injected latency applied
	// to every delivered request (0 disables).
	DelayMax time.Duration
}

// Zero reports whether the spec injects nothing.
func (s NetSpec) Zero() bool {
	return s.Drop == 0 && s.DropReply == 0 && s.Dup == 0 && s.Err == 0 && s.DelayMax == 0
}

// String renders the canonical syntax ParseNetSpec accepts.
func (s NetSpec) String() string {
	var parts []string
	add := func(k string, v float64) {
		if v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%v", k, v))
		}
	}
	add("drop", s.Drop)
	add("dropreply", s.DropReply)
	add("dup", s.Dup)
	add("err", s.Err)
	if s.DelayMax != 0 {
		parts = append(parts, "delay="+s.DelayMax.String())
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// ParseNetSpec parses "drop=0.05,dropreply=0.1,dup=0.05,err=0.05,
// delay=20ms".  Empty string and "none" mean no faults.
func ParseNetSpec(s string) (NetSpec, error) {
	var out NetSpec
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return out, nil
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return out, fmt.Errorf("netfaults: %q is not key=value", kv)
		}
		if k == "delay" {
			d, err := time.ParseDuration(v)
			if err != nil {
				return out, fmt.Errorf("netfaults: delay: %v", err)
			}
			if d < 0 {
				return out, fmt.Errorf("netfaults: negative delay %v", d)
			}
			out.DelayMax = d
			continue
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return out, fmt.Errorf("netfaults: %s: %v", k, err)
		}
		switch k {
		case "drop":
			out.Drop = f
		case "dropreply":
			out.DropReply = f
		case "dup":
			out.Dup = f
		case "err":
			out.Err = f
		default:
			return out, fmt.Errorf("netfaults: unknown key %q (drop, dropreply, dup, err, delay)", k)
		}
	}
	for _, p := range []float64{out.Drop, out.DropReply, out.Dup, out.Err} {
		if p < 0 || p > 1 {
			return out, fmt.Errorf("netfaults: probability %v outside [0,1]", p)
		}
	}
	if sum := out.Drop + out.DropReply + out.Dup + out.Err; sum > 1 {
		return out, fmt.Errorf("netfaults: mode probabilities sum to %v > 1", sum)
	}
	return out, nil
}

// NetStats counts what one injector actually injected.
type NetStats struct {
	Requests       int // requests seen
	Dropped        int // requests lost before delivery
	RepliesDropped int // responses lost after delivery
	Duplicated     int // requests delivered twice
	Errored        int // synthetic 503s
	Delayed        int // requests that slept
}

// netMode is the per-request fault decision.
type netMode int

const (
	netNone netMode = iota
	netDrop
	netDropReply
	netDup
	netErr
)

// NetInjector is the seeded faulty transport.  Wrap a client's
// RoundTripper with it and every request runs the gauntlet.
type NetInjector struct {
	base http.RoundTripper

	mu    sync.Mutex
	spec  NetSpec
	rng   *rand.Rand
	stats NetStats
}

// NewNetInjector seeds a faulty transport over base (nil base uses
// http.DefaultTransport).
func NewNetInjector(spec NetSpec, seed int64, base http.RoundTripper) *NetInjector {
	if base == nil {
		base = http.DefaultTransport
	}
	return &NetInjector{base: base, spec: spec, rng: rand.New(rand.NewSource(seed))}
}

// Stats snapshots the injection counters.
func (n *NetInjector) Stats() NetStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// draw consumes the per-request randomness in a fixed order: one delay
// draw (when delays are enabled), then one cumulative mode draw.
func (n *NetInjector) draw() (time.Duration, netMode) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats.Requests++
	var delay time.Duration
	if n.spec.DelayMax > 0 {
		delay = time.Duration(n.rng.Float64() * float64(n.spec.DelayMax))
		if delay > 0 {
			n.stats.Delayed++
		}
	}
	p := n.rng.Float64()
	switch {
	case p < n.spec.Drop:
		n.stats.Dropped++
		return delay, netDrop
	case p < n.spec.Drop+n.spec.DropReply:
		n.stats.RepliesDropped++
		return delay, netDropReply
	case p < n.spec.Drop+n.spec.DropReply+n.spec.Dup:
		n.stats.Duplicated++
		return delay, netDup
	case p < n.spec.Drop+n.spec.DropReply+n.spec.Dup+n.spec.Err:
		n.stats.Errored++
		return delay, netErr
	}
	return delay, netNone
}

// injectedError marks a transport failure as injected (clients treat
// it like any other transport error — that is the point).
type injectedError struct{ what string }

func (e injectedError) Error() string { return "netfaults: injected " + e.what }

// RoundTrip applies the drawn fault to one exchange.
func (n *NetInjector) RoundTrip(req *http.Request) (*http.Response, error) {
	delay, mode := n.draw()
	if delay > 0 {
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(delay):
		}
	}
	switch mode {
	case netDrop:
		// Lost on the way out: consume the body like a real send would,
		// then fail without delivery.
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		return nil, injectedError{"request drop"}
	case netErr:
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		return &http.Response{
			StatusCode: http.StatusServiceUnavailable,
			Status:     "503 Service Unavailable (injected)",
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  http.Header{"Content-Type": []string{"text/plain"}},
			Body:    io.NopCloser(strings.NewReader("netfaults: injected 503\n")),
			Request: req,
		}, nil
	case netDup:
		// Deliver twice.  The first delivery's response is discarded (a
		// retrying proxy saw a timeout it imagined); the caller gets the
		// second.  Requires a replayable body, which net/http guarantees
		// for the buffered bodies the protocol uses (GetBody non-nil).
		if req.GetBody != nil {
			first := req.Clone(req.Context())
			if body, err := req.GetBody(); err == nil {
				first.Body = body
				if resp, err := n.base.RoundTrip(first); err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				if body2, err := req.GetBody(); err == nil {
					req = req.Clone(req.Context())
					req.Body = body2
				}
			}
		}
		return n.base.RoundTrip(req)
	case netDropReply:
		resp, err := n.base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		// The server processed it; the reply evaporates.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, injectedError{"response drop"}
	}
	return n.base.RoundTrip(req)
}

var _ http.RoundTripper = (*NetInjector)(nil)

package faults

import (
	"testing"

	"repro/internal/nvml"
)

func TestParseSpecRoundTrip(t *testing.T) {
	cases := []string{
		"none",
		"capfail=0.3,clamp=0.1,throttle=1,dropout=1,taskfail=0.02,retries=3",
		"capfail=0.5",
		"dropout=2",
		"taskfail=0.1,retries=5",
	}
	for _, in := range cases {
		s, err := ParseSpec(in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", in, err)
		}
		// The canonical rendering must parse back to the same spec.
		s2, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("ParseSpec(%q.String()=%q): %v", in, s.String(), err)
		}
		if s != s2 {
			t.Errorf("round trip of %q: %+v != %+v", in, s, s2)
		}
	}
}

func TestParseSpecEmptyAndNone(t *testing.T) {
	for _, in := range []string{"", "none", "  "} {
		s, err := ParseSpec(in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", in, err)
		}
		if !s.Zero() {
			t.Errorf("ParseSpec(%q) = %+v, want zero", in, s)
		}
	}
	if !(Spec{}).Zero() {
		t.Error("zero Spec not Zero()")
	}
	if got := (Spec{}).String(); got != "none" {
		t.Errorf("zero Spec.String() = %q, want none", got)
	}
}

func TestParseSpecRejectsBadInput(t *testing.T) {
	bad := []string{
		"capfail",          // not key=value
		"capfail=x",        // not a number
		"capfail=1.5",      // probability out of range
		"taskfail=-0.1",    // negative probability
		"dropout=-1",       // negative count
		"warpdrive=1",      // unknown key
		"capfail=0.2,zz=1", // unknown key after valid one
	}
	for _, in := range bad {
		if _, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q) accepted", in)
		}
	}
}

func TestInjectorScheduleIsSeedDeterministic(t *testing.T) {
	spec := Spec{Throttles: 3, Dropouts: 2, CapFail: 0.5, TaskFail: 0.1}
	a := NewInjector(spec, 42)
	b := NewInjector(spec, 42)
	if len(a.plans) != len(b.plans) {
		t.Fatalf("plan counts differ: %d vs %d", len(a.plans), len(b.plans))
	}
	for i := range a.plans {
		if a.plans[i] != b.plans[i] {
			t.Errorf("plan %d differs under the same seed: %+v vs %+v", i, a.plans[i], b.plans[i])
		}
	}
	c := NewInjector(spec, 43)
	same := true
	for i := range a.plans {
		if a.plans[i] != c.plans[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds drew identical hardware schedules")
	}
}

func TestOnSetPowerLimitFloorsClampAtMinimum(t *testing.T) {
	// CapClamp=1 guarantees the clamp path; the request sits just above
	// the driver minimum so the 0.5 clamp would land below it.
	inj := NewInjector(Spec{CapClamp: 1, ClampFrac: 0.5}, 1)
	inj.BindLimits(100, 400)
	mw, ret := inj.OnSetPowerLimit(0, 110_000)
	if ret != nvml.SUCCESS {
		t.Fatalf("ret = %v", ret)
	}
	if mw != 100_000 {
		t.Errorf("clamped request = %d mW, want floor 100000", mw)
	}
}

func TestOnSetPowerLimitAlwaysFails(t *testing.T) {
	inj := NewInjector(Spec{CapFail: 1}, 1)
	for i := 0; i < 5; i++ {
		if _, ret := inj.OnSetPowerLimit(0, 200_000); ret != nvml.ERROR_UNKNOWN {
			t.Fatalf("call %d: ret = %v, want ERROR_UNKNOWN", i, ret)
		}
	}
	if inj.Stats().CapFailures != 5 {
		t.Errorf("CapFailures = %d, want 5", inj.Stats().CapFailures)
	}
}

func TestZeroSpecInjectsNothing(t *testing.T) {
	inj := NewInjector(Spec{}, 7)
	if mw, ret := inj.OnSetPowerLimit(0, 250_000); mw != 250_000 || ret != nvml.SUCCESS {
		t.Errorf("zero spec rewrote a cap write: %d, %v", mw, ret)
	}
	if fail, _ := inj.TaskAttempt(nil, 0, 0); fail {
		t.Error("zero spec failed a task attempt")
	}
	if inj.Stats().Total() != 0 {
		t.Errorf("zero spec recorded injections: %+v", inj.Stats())
	}
}

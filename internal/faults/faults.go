// Package faults implements the deterministic, seeded fault injector
// behind the chaos experiments: transient NVML cap-write failures and
// clamping, GPU thermal-throttle windows, permanent device dropout and
// task execution faults.
//
// Every random draw happens inside a cell's single-threaded simulation,
// in virtual-time order, from one rand.Rand seeded by the cell seed —
// so a fault schedule is a pure function of (spec, seed) and the
// parallel-sweep determinism contract (byte-identical output at any
// worker count) holds with faults enabled.  Hardware events (throttles,
// dropouts) trigger at task-completion counts drawn as fractions of the
// DAG, keeping schedules scale-free across workload sizes.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"repro/internal/nvml"
	"repro/internal/platform"
	"repro/internal/starpu"
	"repro/internal/units"
)

// Spec declares a fault mix.  The zero value injects nothing.
type Spec struct {
	// CapFail is the probability a power-limit write fails with the
	// EBUSY-style transient ERROR_UNKNOWN (retried by the applicator).
	CapFail float64
	// CapClamp is the probability the driver clamps/drifts a power-limit
	// write to ClampFrac of the request (floored at the driver minimum).
	CapClamp float64
	// ClampFrac scales a clamped request (default 0.9).
	ClampFrac float64
	// Throttles is how many thermal-throttle windows open over the run.
	Throttles int
	// Dropouts is how many boards fall off the bus over the run.
	Dropouts int
	// TaskFail is the per-attempt probability a task execution faults
	// mid-compute and is retried.
	TaskFail float64
	// Retries bounds failed attempts per task (default 3).
	Retries int
}

// Zero reports whether the spec injects nothing.
func (s Spec) Zero() bool {
	return s.CapFail == 0 && s.CapClamp == 0 && s.Throttles == 0 &&
		s.Dropouts == 0 && s.TaskFail == 0
}

// String renders the canonical spec syntax ParseSpec accepts.
func (s Spec) String() string {
	var parts []string
	add := func(k string, v float64) {
		if v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%v", k, v))
		}
	}
	add("capfail", s.CapFail)
	add("clamp", s.CapClamp)
	if s.ClampFrac != 0 && s.ClampFrac != 0.9 {
		add("clampfrac", s.ClampFrac)
	}
	add("throttle", float64(s.Throttles))
	add("dropout", float64(s.Dropouts))
	add("taskfail", s.TaskFail)
	if s.Retries != 0 {
		add("retries", float64(s.Retries))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses "capfail=0.3,clamp=0.1,throttle=1,dropout=1,
// taskfail=0.02,retries=3".  Empty string and "none" mean no faults.
func ParseSpec(s string) (Spec, error) {
	var out Spec
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return out, nil
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return out, fmt.Errorf("faults: %q is not key=value", kv)
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return out, fmt.Errorf("faults: %s: %v", k, err)
		}
		switch k {
		case "capfail":
			out.CapFail = f
		case "clamp":
			out.CapClamp = f
		case "clampfrac":
			out.ClampFrac = f
		case "throttle":
			out.Throttles = int(f)
		case "dropout":
			out.Dropouts = int(f)
		case "taskfail":
			out.TaskFail = f
		case "retries":
			out.Retries = int(f)
		default:
			return out, fmt.Errorf("faults: unknown key %q (capfail, clamp, clampfrac, throttle, dropout, taskfail, retries)", k)
		}
	}
	for _, p := range []float64{out.CapFail, out.CapClamp, out.TaskFail} {
		if p < 0 || p > 1 {
			return out, fmt.Errorf("faults: probability %v outside [0,1]", p)
		}
	}
	if out.Throttles < 0 || out.Dropouts < 0 || out.Retries < 0 {
		return out, fmt.Errorf("faults: negative count in %q", s)
	}
	return out, nil
}

// Stats counts what one injector actually injected.
type Stats struct {
	// CapFailures counts injected transient cap-write failures.
	CapFailures int
	// CapClamps counts injected clamped/drifted cap writes.
	CapClamps int
	// TaskFaults counts injected mid-compute task faults.
	TaskFaults int
	// Throttles counts thermal windows opened.
	Throttles int
	// Dropouts counts boards killed.
	Dropouts int
	// Evictions counts workers evicted after dropouts.
	Evictions int
	// Requeued counts tasks handed back to survivors by evictions.
	Requeued int
}

// Total sums the injected fault events (not the recovery bookkeeping).
func (s Stats) Total() int {
	return s.CapFailures + s.CapClamps + s.TaskFaults + s.Throttles + s.Dropouts
}

// hwPlan is one pre-drawn hardware event: all randomness is consumed at
// construction so the schedule is fixed before the simulation starts.
type hwPlan struct {
	throttle  bool    // else dropout
	gpuDraw   float64 // → gpu index once the GPU count is known
	atFrac    float64 // trigger at this fraction of completed tasks
	endFrac   float64 // throttle window close (fraction)
	levelFrac float64 // throttle depth within the lower half of the cap window
}

// hwEvent is a materialised trigger at an absolute completion count.
type hwEvent struct {
	at   int
	fire func()
}

// Injector realises one Spec under one seed.  It plugs into three
// seams: nvml.CapFaultPolicy (cap-write faults), starpu.FaultInjector
// (task faults), and a starpu.Observer (completion-count triggers for
// throttles and dropouts).  Use it for exactly one cell: it is
// stateful and single-threaded, like the simulation that drives it.
type Injector struct {
	spec  Spec
	rng   *rand.Rand
	minW  units.Watts
	maxW  units.Watts
	plans []hwPlan

	rt        *starpu.Runtime
	plat      *platform.Platform
	submitted int
	completed int
	armed     bool
	events    []hwEvent
	stats     Stats
}

// NewInjector draws the hardware-event schedule for spec under seed.
func NewInjector(spec Spec, seed int64) *Injector {
	inj := &Injector{spec: spec, rng: rand.New(rand.NewSource(seed))}
	if inj.spec.ClampFrac == 0 {
		inj.spec.ClampFrac = 0.9
	}
	if inj.spec.Retries == 0 {
		inj.spec.Retries = 3
	}
	// Fixed draw order per event keeps schedules comparable across specs.
	for i := 0; i < spec.Throttles; i++ {
		at := 0.1 + 0.6*inj.rng.Float64()
		inj.plans = append(inj.plans, hwPlan{
			throttle:  true,
			gpuDraw:   inj.rng.Float64(),
			atFrac:    at,
			endFrac:   at + 0.05 + 0.25*inj.rng.Float64(),
			levelFrac: inj.rng.Float64(),
		})
	}
	for i := 0; i < spec.Dropouts; i++ {
		inj.plans = append(inj.plans, hwPlan{
			gpuDraw: inj.rng.Float64(),
			atFrac:  0.2 + 0.6*inj.rng.Float64(),
		})
	}
	return inj
}

// BindLimits tells the injector the driver's cap window, which bounds
// clamped writes and throttle depths.  Call before the first cap write.
func (inj *Injector) BindLimits(min, max units.Watts) {
	inj.minW, inj.maxW = min, max
}

// Bind attaches the injector to the measured run.  Call after the
// runtime is built (the injector must also be in its Observer chain for
// hardware events to trigger).
func (inj *Injector) Bind(rt *starpu.Runtime, plat *platform.Platform) {
	inj.rt = rt
	inj.plat = plat
}

// Stats reports what was injected so far.
func (inj *Injector) Stats() Stats { return inj.stats }

// ---- nvml.CapFaultPolicy ----

// OnSetPowerLimit injects transient failures and clamps on cap writes.
func (inj *Injector) OnSetPowerLimit(index int, requestedMW uint32) (uint32, nvml.Return) {
	if inj.spec.CapFail > 0 && inj.rng.Float64() < inj.spec.CapFail {
		inj.stats.CapFailures++
		return requestedMW, nvml.ERROR_UNKNOWN
	}
	if requestedMW > 0 && inj.spec.CapClamp > 0 && inj.rng.Float64() < inj.spec.CapClamp {
		clamped := uint32(float64(requestedMW) * inj.spec.ClampFrac)
		if minMW := uint32(float64(inj.minW) * 1000); clamped < minMW {
			clamped = minMW
		}
		if clamped != requestedMW {
			inj.stats.CapClamps++
		}
		return clamped, nvml.SUCCESS
	}
	return requestedMW, nvml.SUCCESS
}

var _ nvml.CapFaultPolicy = (*Injector)(nil)

// ---- starpu.FaultInjector ----

// TaskAttempt injects mid-compute execution faults.
func (inj *Injector) TaskAttempt(t *starpu.Task, worker, attempt int) (bool, float64) {
	if inj.spec.TaskFail <= 0 || inj.rng.Float64() >= inj.spec.TaskFail {
		return false, 0
	}
	inj.stats.TaskFaults++
	return true, inj.rng.Float64()
}

// MaxTaskRetries bounds failed attempts per task.
func (inj *Injector) MaxTaskRetries() int { return inj.spec.Retries }

var _ starpu.FaultInjector = (*Injector)(nil)

// ---- starpu.Observer: completion-count triggers ----

// TaskSubmitted counts the DAG so completion fractions can resolve to
// absolute trigger counts.
func (inj *Injector) TaskSubmitted(t *starpu.Task) { inj.submitted++ }

// TaskStarted is a no-op.
func (inj *Injector) TaskStarted(workerID int, t *starpu.Task) {}

// SchedDecision is a no-op.
func (inj *Injector) SchedDecision(d starpu.Decision) {}

// TaskCompleted advances the trigger clock and fires due hardware
// events.  Mutation of runtime/platform state is deferred with a
// zero-delay engine event, honouring the Observer no-callback rule.
func (inj *Injector) TaskCompleted(workerID int, t *starpu.Task) {
	if inj.rt == nil {
		return
	}
	if !inj.armed {
		inj.arm()
	}
	inj.completed++
	for len(inj.events) > 0 && inj.events[0].at <= inj.completed {
		fire := inj.events[0].fire
		inj.events = inj.events[1:]
		inj.rt.Machine().Engine().After(0, fire)
	}
}

var _ starpu.Observer = (*Injector)(nil)

// arm materialises the pre-drawn plans into absolute completion counts,
// once the submitted DAG size is known (first completion).
func (inj *Injector) arm() {
	inj.armed = true
	total := inj.submitted
	at := func(frac float64) int {
		n := int(frac * float64(total))
		if n < 1 {
			n = 1
		}
		return n
	}
	for _, p := range inj.plans {
		p := p
		gpu := int(p.gpuDraw * float64(len(inj.plat.GPUs())))
		if gpu >= len(inj.plat.GPUs()) {
			gpu = len(inj.plat.GPUs()) - 1
		}
		if p.throttle {
			// Throttle into the lower half of the cap window: deep enough
			// to change the device's power class.
			level := inj.minW + units.Watts(p.levelFrac*0.5*float64(inj.maxW-inj.minW))
			inj.events = append(inj.events, hwEvent{at: at(p.atFrac), fire: func() {
				if !inj.plat.GPUAlive(gpu) {
					return
				}
				inj.stats.Throttles++
				inj.plat.ThrottleGPU(gpu, level)
			}})
			inj.events = append(inj.events, hwEvent{at: at(p.endFrac), fire: func() {
				inj.plat.ClearGPUThrottle(gpu)
			}})
		} else {
			inj.events = append(inj.events, hwEvent{at: at(p.atFrac), fire: func() {
				inj.fireDropout(gpu)
			}})
		}
	}
	sort.SliceStable(inj.events, func(i, j int) bool { return inj.events[i].at < inj.events[j].at })
}

// fireDropout kills a board and evicts its worker, requeueing its work
// onto survivors.
func (inj *Injector) fireDropout(gpu int) {
	if !inj.plat.GPUAlive(gpu) {
		return // a previous dropout already took this board
	}
	inj.plat.KillGPU(gpu)
	inj.stats.Dropouts++
	for i := 0; i < inj.plat.NumWorkers(); i++ {
		if inj.plat.WorkerGPU(i) == gpu {
			ev := inj.rt.EvictWorker(i, "gpu-dropout")
			inj.stats.Evictions++
			inj.stats.Requeued += ev.Requeued
		}
	}
}

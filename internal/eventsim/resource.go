package eventsim

import (
	"repro/internal/units"
)

// Resource models an exclusive serial resource (a PCIe link, a DMA
// engine) on which requests queue FIFO: a request issued at time t for
// duration d occupies the resource from max(t, free) to max(t, free)+d.
//
// Reserve is the only operation; it returns the interval granted, which
// callers use to schedule completion events.  This "availability time"
// abstraction models contention without simulating individual packets.
type Resource struct {
	name string
	free units.Seconds
	busy units.Seconds // cumulated occupied time, for utilisation stats
	uses int
}

// NewResource returns a named serial resource, free from time zero.
func NewResource(name string) *Resource {
	return &Resource{name: name}
}

// Name reports the resource label.
func (r *Resource) Name() string { return r.name }

// Reserve books the resource for duration d, no earlier than "from".
// It returns the start and end of the granted interval.
func (r *Resource) Reserve(from, d units.Seconds) (start, end units.Seconds) {
	start = from
	if r.free > start {
		start = r.free
	}
	end = start + d
	r.free = end
	r.busy += d
	r.uses++
	return start, end
}

// FreeAt reports the earliest time a new reservation could start.
func (r *Resource) FreeAt() units.Seconds { return r.free }

// BusyTime reports the total reserved time.
func (r *Resource) BusyTime() units.Seconds { return r.busy }

// Uses reports how many reservations were granted.
func (r *Resource) Uses() int { return r.uses }

// Reset clears the reservation state (between experiment passes).
func (r *Resource) Reset() {
	r.free, r.busy, r.uses = 0, 0, 0
}

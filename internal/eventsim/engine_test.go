package eventsim

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []float64
	times := []float64{5, 1, 3, 2, 4}
	for _, at := range times {
		at := at
		e.At(units.Seconds(at), func() { got = append(got, at) })
	}
	end := e.Run()
	if float64(end) != 5 {
		t.Errorf("end time = %v, want 5", end)
	}
	if !sort.Float64sAreSorted(got) {
		t.Errorf("events fired out of order: %v", got)
	}
	if len(got) != len(times) {
		t.Errorf("fired %d events, want %d", len(got), len(times))
	}
}

func TestSameTimestampFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(1, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-timestamp events not FIFO: %v", got)
		}
	}
}

func TestEventOrderingProperty(t *testing.T) {
	// Property: for any set of non-negative event times, events fire in
	// non-decreasing time order and the clock ends at the max.
	f := func(raw []uint16) bool {
		e := NewEngine()
		var fired []float64
		maxT := 0.0
		for _, r := range raw {
			at := float64(r) / 7.0
			if at > maxT {
				maxT = at
			}
			at2 := at
			e.At(units.Seconds(at), func() { fired = append(fired, at2) })
		}
		end := e.Run()
		if len(raw) > 0 && math.Abs(float64(end)-maxT) > 1e-12 {
			return false
		}
		return sort.Float64sAreSorted(fired)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var trace []string
	e.At(1, func() {
		trace = append(trace, "a")
		e.After(2, func() { trace = append(trace, "c") })
		e.After(1, func() { trace = append(trace, "b") })
	})
	e.Run()
	want := []string{"a", "b", "c"}
	for i := range want {
		if i >= len(trace) || trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
	if e.Now() != 3 {
		t.Errorf("clock = %v, want 3", e.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(5, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	e.At(1, func() {})
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	for _, at := range []float64{1, 2, 3, 10} {
		e.At(units.Seconds(at), func() { fired++ })
	}
	e.RunUntil(5)
	if fired != 3 {
		t.Errorf("fired = %d, want 3", fired)
	}
	if e.Now() != 5 {
		t.Errorf("clock = %v, want 5", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
}

func TestPowerMeterIntegration(t *testing.T) {
	e := NewEngine()
	m := e.NewMeter("gpu0", 50) // 50 W idle baseline
	e.At(1, func() { m.SetPower(250) })
	e.At(3, func() { m.SetPower(50) })
	e.At(10, func() {})
	e.Run()
	// 1s@50 + 2s@250 + 7s@50 = 50+500+350 = 900 J
	if got := m.Energy(); math.Abs(float64(got)-900) > 1e-9 {
		t.Errorf("energy = %v, want 900 J", got)
	}
	if m.Peak() != 250 {
		t.Errorf("peak = %v, want 250", m.Peak())
	}
}

func TestPowerMeterAddPower(t *testing.T) {
	e := NewEngine()
	m := e.NewMeter("pkg", 10)
	e.At(0, func() { m.AddPower(20) })  // 30 W from t=0
	e.At(2, func() { m.AddPower(-20) }) // back to 10 W
	e.At(4, func() {})
	e.Run()
	// 2s@30 + 2s@10 = 80 J
	if got := m.Energy(); math.Abs(float64(got)-80) > 1e-9 {
		t.Errorf("energy = %v, want 80 J", got)
	}
}

func TestPowerMeterReset(t *testing.T) {
	e := NewEngine()
	m := e.NewMeter("gpu", 100)
	e.At(2, func() {
		if got := m.Energy(); math.Abs(float64(got)-200) > 1e-9 {
			t.Errorf("pre-reset energy = %v, want 200", got)
		}
		m.Reset()
	})
	e.At(5, func() {})
	e.Run()
	if got := m.Energy(); math.Abs(float64(got)-300) > 1e-9 {
		t.Errorf("post-reset energy = %v, want 300 J", got)
	}
}

func TestPowerMeterEnergyProperty(t *testing.T) {
	// Property: total energy equals the hand-computed piecewise integral
	// for random step traces.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		m := e.NewMeter("m", 0)
		tcur := 0.0
		want := 0.0
		power := 0.0
		n := rng.Intn(20) + 1
		for i := 0; i < n; i++ {
			dt := rng.Float64() * 10
			next := tcur + dt
			want += power * dt
			p := rng.Float64() * 500
			tNext, pNext := next, p
			e.At(units.Seconds(tNext), func() { m.SetPower(units.Watts(pNext)) })
			tcur, power = next, p
		}
		// trailing segment of 1s
		want += power * 1.0
		e.At(units.Seconds(tcur+1), func() {})
		e.Run()
		got := float64(m.Energy())
		return math.Abs(got-want) <= 1e-6*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestResourceFIFO(t *testing.T) {
	r := NewResource("pcie")
	s1, e1 := r.Reserve(0, 2)
	if s1 != 0 || e1 != 2 {
		t.Errorf("first reservation = [%v,%v], want [0,2]", s1, e1)
	}
	// request at t=1 while busy until 2 -> starts at 2
	s2, e2 := r.Reserve(1, 3)
	if s2 != 2 || e2 != 5 {
		t.Errorf("second reservation = [%v,%v], want [2,5]", s2, e2)
	}
	// request after the resource is free -> starts immediately
	s3, e3 := r.Reserve(10, 1)
	if s3 != 10 || e3 != 11 {
		t.Errorf("third reservation = [%v,%v], want [10,11]", s3, e3)
	}
	if r.Uses() != 3 {
		t.Errorf("uses = %d, want 3", r.Uses())
	}
	if r.BusyTime() != 6 {
		t.Errorf("busy = %v, want 6", r.BusyTime())
	}
	r.Reset()
	if r.FreeAt() != 0 || r.Uses() != 0 || r.BusyTime() != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestResourceNoOverlapProperty(t *testing.T) {
	// Property: granted intervals never overlap and respect request times.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewResource("link")
		tcur := 0.0
		prevEnd := units.Seconds(0)
		for i := 0; i < 50; i++ {
			tcur += rng.Float64()
			d := units.Seconds(rng.Float64() * 2)
			s, e := r.Reserve(units.Seconds(tcur), d)
			if s < prevEnd || s < units.Seconds(tcur) {
				return false
			}
			if math.Abs(float64(e-s-d)) > 1e-12 {
				return false
			}
			prevEnd = e
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPowerMeterTrace(t *testing.T) {
	e := NewEngine()
	m := e.NewMeter("gpu", 50)
	e.At(1, func() { m.SetPower(250) })
	e.At(2, func() { m.EnableTrace() })
	e.At(3, func() { m.SetPower(60) })
	e.At(4, func() { m.SetPower(70) })
	e.Run()
	tr := m.Trace()
	if len(tr) != 3 { // enable snapshot + two steps
		t.Fatalf("trace has %d samples, want 3: %v", len(tr), tr)
	}
	if tr[0].T != 2 || tr[0].Power != 250 {
		t.Errorf("first sample = %+v, want current level at enable time", tr[0])
	}
	if tr[2].T != 4 || tr[2].Power != 70 {
		t.Errorf("last sample = %+v", tr[2])
	}
	// Enabling twice must not duplicate the snapshot.
	m.EnableTrace()
	if len(m.Trace()) != 3 {
		t.Error("double EnableTrace added samples")
	}
}

func TestUntracedMeterHasNoTrace(t *testing.T) {
	e := NewEngine()
	m := e.NewMeter("cpu", 10)
	e.At(1, func() { m.SetPower(20) })
	e.Run()
	if m.Trace() != nil {
		t.Error("trace recorded without EnableTrace")
	}
}

package eventsim

import (
	"testing"

	"repro/internal/units"
)

// BenchmarkEventThroughput measures the raw discrete-event loop: each
// fired event schedules a successor, the workload pattern of a task
// completing and waking its dependants.
func BenchmarkEventThroughput(b *testing.B) {
	e := NewEngine()
	remaining := b.N
	var step func()
	step = func() {
		if remaining > 0 {
			remaining--
			e.After(1e-6, step)
		}
	}
	e.After(0, step)
	b.ResetTimer()
	e.Run()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkPowerMeter measures meter updates, the per-task power
// bookkeeping cost.
func BenchmarkPowerMeter(b *testing.B) {
	e := NewEngine()
	m := e.NewMeter("gpu", 50)
	for i := 0; i < b.N; i++ {
		t := units.Seconds(float64(i) * 1e-6)
		e.At(t, func() { m.AddPower(10) })
		e.At(t+5e-7, func() { m.AddPower(-10) })
	}
	b.ResetTimer()
	e.Run()
	_ = m.Energy()
}

// BenchmarkResource measures link reservations.
func BenchmarkResource(b *testing.B) {
	r := NewResource("pcie")
	for i := 0; i < b.N; i++ {
		r.Reserve(units.Seconds(float64(i)*1e-6), 5e-7)
	}
}

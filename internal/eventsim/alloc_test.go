package eventsim

import "testing"

// TestNoAllocsSteadyState pins the zero-allocation contract of the
// event loop's inner step: once the queue's backing array has grown to
// its working size, a pop-one/push-one steady state (an event that
// reschedules itself, the shape of every poller in the simulator) must
// not allocate.  A regression here — an event boxed back onto the heap,
// a queue that re-grows — shows up as a fractional allocs-per-op long
// before it is visible in the cell benchmark.
func TestNoAllocsSteadyState(t *testing.T) {
	e := NewEngine()
	fired := 0
	var fn func()
	fn = func() { fired++; e.After(1, fn) }
	e.After(1, fn)
	// Warm the queue's backing array and the closure's captures.
	for i := 0; i < 64; i++ {
		if !e.Step() {
			t.Fatal("queue drained during warmup")
		}
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if !e.Step() {
			t.Fatal("queue drained mid-measurement")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Step allocates %.2f times per op, want 0", allocs)
	}
	if fired < 1064 {
		t.Fatalf("only %d events fired; the measurement loop did not run", fired)
	}
}

package eventsim

import (
	"math/rand"
	"testing"

	"repro/internal/units"
)

// TestTieBreakFIFO pins the package's replayability contract on the
// slice-backed queue: events scheduled for the same timestamp fire in
// exactly their scheduling order, even interleaved with earlier and
// later timestamps.
func TestTieBreakFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	rec := func(id int) func() { return func() { got = append(got, id) } }

	e.At(5, rec(0))
	e.At(2, rec(1))
	e.At(5, rec(2))
	e.At(2, rec(3))
	e.At(5, rec(4))
	e.At(1, rec(5))
	e.At(2, rec(6))
	e.Run()

	want := []int{5, 1, 3, 6, 0, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("firing order %v, want %v (FIFO at equal timestamps)", got, want)
		}
	}
}

// TestPopLastElement drains the queue to exactly empty through Step and
// checks the boundary: popping the final element, then a Step on the
// empty queue, then scheduling again from empty.
func TestPopLastElement(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(1, func() { fired++ })
	if !e.Step() {
		t.Fatal("Step on a one-element queue reported empty")
	}
	if fired != 1 || e.Pending() != 0 {
		t.Fatalf("after popping the last element: fired=%d pending=%d", fired, e.Pending())
	}
	if e.Step() {
		t.Fatal("Step on an empty queue reported an event")
	}
	// Re-push from empty: the queue must behave like new.
	e.At(2, func() { fired++ })
	e.At(2, func() { fired++ })
	e.Run()
	if fired != 3 {
		t.Fatalf("fired %d events total, want 3", fired)
	}
}

// TestRePushAfterRecycle runs a full drain (which donates the backing
// array to the pool), then schedules a fresh load through the same
// engine and through a new engine (which may adopt the recycled array),
// checking order and count both times.  Guards against a recycled array
// resurfacing with stale length or contents.
func TestRePushAfterRecycle(t *testing.T) {
	defer SetPooling(SetPooling(true))

	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(units.Seconds(100-i), func() { got = append(got, i) })
	}
	e.Run()
	if len(got) != 100 || got[0] != 99 || got[99] != 0 {
		t.Fatalf("first drain misfired: %d events, ends %d..%d", len(got), got[0], got[len(got)-1])
	}

	// Same engine, after its queue was recycled.
	got = got[:0]
	e.At(200, func() { got = append(got, 1) })
	e.At(150, func() { got = append(got, 0) })
	e.Run()
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("re-push after recycle fired %v, want [0 1]", got)
	}

	// Fresh engine adopting a pooled array: a randomized schedule must
	// still fire in (time, seq) order.
	e2 := NewEngine()
	rng := rand.New(rand.NewSource(7))
	type key struct {
		at  units.Seconds
		seq int
	}
	var fired []key
	for i := 0; i < 500; i++ {
		i := i
		at := units.Seconds(rng.Intn(50))
		e2.At(at, func() { fired = append(fired, key{at, i}) })
	}
	e2.Run()
	if len(fired) != 500 {
		t.Fatalf("fired %d events, want 500", len(fired))
	}
	for i := 1; i < len(fired); i++ {
		a, b := fired[i-1], fired[i]
		if a.at > b.at || (a.at == b.at && a.seq > b.seq) {
			t.Fatalf("event %d fired out of (time, seq) order: %v then %v", i, a, b)
		}
	}
}

// TestPoolingToggleSafe checks SetPooling's contract: disabling pools
// mid-run changes no behaviour, only recycling.
func TestPoolingToggleSafe(t *testing.T) {
	defer SetPooling(SetPooling(false))

	e := NewEngine()
	fired := 0
	e.At(1, func() { fired++ })
	e.Run()
	e.At(2, func() { fired++ })
	e.Run()
	if fired != 2 {
		t.Fatalf("fired %d events with pooling disabled, want 2", fired)
	}
	if PoolingEnabled() {
		t.Fatal("PoolingEnabled() true after SetPooling(false)")
	}
}

// Package eventsim implements the discrete-event core of the simulator:
// a virtual clock, a deterministic event queue and power integrators that
// turn piecewise-constant power traces into exact energy figures.
//
// The engine is deliberately single-threaded: HPC runs are simulated in
// virtual time, so determinism and reproducibility matter more than host
// parallelism.  Events scheduled for the same timestamp fire in FIFO
// order of scheduling, which makes every simulation replayable.
package eventsim

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/units"
)

// event is a callback scheduled to fire at a virtual timestamp.  It is
// stored by value in the queue: scheduling allocates nothing per event,
// only (rarely) to grow the backing array.
type event struct {
	at  units.Seconds
	seq uint64
	fn  func()
}

// eventQueue is a slice-backed binary min-heap ordered by (time,
// insertion sequence).  That key is a strict total order — no two
// events compare equal — so the pop sequence is a pure function of the
// pushed set and the internal heap layout can never affect simulation
// order (the replayability contract of the package).
type eventQueue []event

func (q eventQueue) less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (q eventQueue) siftDown(i int) {
	n := len(q)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && q.less(r, l) {
			m = r
		}
		if !q.less(m, i) {
			break
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
}

// poolingEnabled gates the backing-array pools (here and in spantrace).
// It exists for the pooled-vs-unpooled property test: disabling pools
// must not change a single output bit.
var poolingEnabled atomic.Bool

func init() { poolingEnabled.Store(true) }

// SetPooling toggles backing-array recycling; it returns the previous
// setting.  Test-only: flipping it mid-simulation is safe (the queue
// just stops/starts recycling) but it is global, so tests that disable
// pooling must not run in parallel with tests that assume it.
func SetPooling(enabled bool) bool { return poolingEnabled.Swap(enabled) }

// PoolingEnabled reports whether backing-array recycling is on.
func PoolingEnabled() bool { return poolingEnabled.Load() }

// queuePool recycles event-queue backing arrays across engines (one
// engine per simulated cell, so a sweep would otherwise regrow the
// array once per cell).  Ownership rule: an array enters the pool only
// via Engine recycling a fully drained queue — length zero, so no fn
// references survive — and leaves it zero-length via At.
var queuePool sync.Pool // holds *eventQueue

func getQueue() eventQueue {
	if !poolingEnabled.Load() {
		return nil
	}
	if p, ok := queuePool.Get().(*eventQueue); ok && p != nil {
		return (*p)[:0]
	}
	return nil
}

func putQueue(q eventQueue) {
	if !poolingEnabled.Load() || cap(q) == 0 {
		return
	}
	q = q[:0]
	queuePool.Put(&q)
}

// Engine is a discrete-event simulation loop.
// The zero value is not usable; call NewEngine.
type Engine struct {
	now    units.Seconds
	seq    uint64
	events eventQueue
	// Meters registered with the engine are finalised by Run so their
	// energy integrals extend to the end of simulated time.
	meters []*PowerMeter
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current virtual time.
func (e *Engine) Now() units.Seconds { return e.now }

// At schedules fn to run at absolute virtual time t.  Scheduling in the
// past panics: it would silently corrupt causality.
func (e *Engine) At(t units.Seconds, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("eventsim: scheduling event at %v before now %v", t, e.now))
	}
	if math.IsNaN(float64(t)) {
		panic("eventsim: scheduling event at NaN time")
	}
	if e.events == nil {
		e.events = getQueue()
	}
	e.seq++
	e.events = append(e.events, event{at: t, seq: e.seq, fn: fn})
	e.events.siftUp(len(e.events) - 1)
}

// After schedules fn to run dt after the current time.
func (e *Engine) After(dt units.Seconds, fn func()) {
	if dt < 0 {
		panic(fmt.Sprintf("eventsim: negative delay %v", dt))
	}
	e.At(e.now+dt, fn)
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

// Step fires the earliest event, advancing the clock to its timestamp.
// It reports false when the queue is empty.
func (e *Engine) Step() bool {
	n := len(e.events)
	if n == 0 {
		return false
	}
	ev := e.events[0]
	e.events[0] = e.events[n-1]
	e.events[n-1] = event{} // drop the fn reference for GC
	e.events = e.events[:n-1]
	if n > 2 {
		e.events.siftDown(0)
	}
	e.now = ev.at
	ev.fn()
	return true
}

// recycle returns a drained queue's backing array to the pool.  Only a
// zero-length queue ever enters the pool, so recycled arrays carry no
// live events and re-pushing after recycling starts from a clean slate.
func (e *Engine) recycle() {
	if len(e.events) == 0 && e.events != nil {
		putQueue(e.events)
		e.events = nil
	}
}

// Run fires events until the queue drains, then closes all registered
// power meters at the final timestamp.  It returns the end time.
func (e *Engine) Run() units.Seconds {
	for e.Step() {
	}
	e.recycle()
	for _, m := range e.meters {
		m.sync(e.now)
	}
	return e.now
}

// RunUntil fires events with timestamps <= deadline.  Events beyond the
// deadline stay queued.  The clock lands exactly on the deadline.
func (e *Engine) RunUntil(deadline units.Seconds) {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	e.recycle()
	if e.now < deadline {
		e.now = deadline
	}
	for _, m := range e.meters {
		m.sync(e.now)
	}
}

// NewMeter creates a power meter bound to this engine's clock, starting
// at the given baseline power (typically the device's idle draw).
func (e *Engine) NewMeter(name string, baseline units.Watts) *PowerMeter {
	m := &PowerMeter{name: name, engine: e, power: baseline, lastT: e.now}
	e.meters = append(e.meters, m)
	return m
}

// PowerSample is one step of a recorded power trace: the meter held
// Power from time T until the next sample's T.
type PowerSample struct {
	T     units.Seconds
	Power units.Watts
}

// PowerMeter integrates a piecewise-constant power trace into energy.
// Every SetPower call closes the previous constant segment.
type PowerMeter struct {
	name   string
	engine *Engine
	power  units.Watts
	lastT  units.Seconds
	energy units.Joules
	peak   units.Watts

	tracing bool
	trace   []PowerSample
}

// Name reports the meter's label (used in energy-split reports).
func (m *PowerMeter) Name() string { return m.name }

// SetPower changes the instantaneous power from now on.
func (m *PowerMeter) SetPower(p units.Watts) {
	m.sync(m.engine.now)
	m.power = p
	if p > m.peak {
		m.peak = p
	}
	if m.tracing {
		m.trace = append(m.trace, PowerSample{T: m.engine.now, Power: p})
	}
}

// EnableTrace starts recording every power step (exact, event-driven —
// not sampled), beginning with the current level.
func (m *PowerMeter) EnableTrace() {
	if !m.tracing {
		m.tracing = true
		m.trace = append(m.trace, PowerSample{T: m.engine.now, Power: m.power})
	}
}

// Trace reports the recorded power steps (nil unless EnableTrace ran).
func (m *PowerMeter) Trace() []PowerSample { return m.trace }

// Now reports the meter's clock (the engine's virtual time), letting
// consumers evaluate time-dependent models such as thermal RC curves.
func (m *PowerMeter) Now() units.Seconds { return m.engine.Now() }

// AddPower adjusts the instantaneous power by delta (may be negative).
func (m *PowerMeter) AddPower(delta units.Watts) {
	m.SetPower(m.power + delta)
}

// Power reports the current instantaneous power.
func (m *PowerMeter) Power() units.Watts {
	return m.power
}

// Peak reports the maximum instantaneous power seen so far.
func (m *PowerMeter) Peak() units.Watts { return m.peak }

// Energy reports the energy integrated up to the engine's current time.
func (m *PowerMeter) Energy() units.Joules {
	m.sync(m.engine.now)
	return m.energy
}

// sync integrates the running segment up to t.
func (m *PowerMeter) sync(t units.Seconds) {
	if t < m.lastT {
		return
	}
	m.energy += units.Energy(m.power, t-m.lastT)
	m.lastT = t
}

// Reset zeroes the accumulated energy (the current power level is kept).
// Used between the calibration pass and the measured pass of a run.
func (m *PowerMeter) Reset() {
	m.sync(m.engine.now)
	m.energy = 0
	m.peak = m.power
}

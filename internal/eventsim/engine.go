// Package eventsim implements the discrete-event core of the simulator:
// a virtual clock, a deterministic event queue and power integrators that
// turn piecewise-constant power traces into exact energy figures.
//
// The engine is deliberately single-threaded: HPC runs are simulated in
// virtual time, so determinism and reproducibility matter more than host
// parallelism.  Events scheduled for the same timestamp fire in FIFO
// order of scheduling, which makes every simulation replayable.
package eventsim

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/units"
)

// Event is a callback scheduled to fire at a virtual timestamp.
type Event struct {
	at  units.Seconds
	seq uint64
	fn  func()
}

// eventHeap orders events by (time, insertion sequence).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation loop.
// The zero value is not usable; call NewEngine.
type Engine struct {
	now    units.Seconds
	seq    uint64
	events eventHeap
	// Meters registered with the engine are finalised by Run so their
	// energy integrals extend to the end of simulated time.
	meters []*PowerMeter
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current virtual time.
func (e *Engine) Now() units.Seconds { return e.now }

// At schedules fn to run at absolute virtual time t.  Scheduling in the
// past panics: it would silently corrupt causality.
func (e *Engine) At(t units.Seconds, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("eventsim: scheduling event at %v before now %v", t, e.now))
	}
	if math.IsNaN(float64(t)) {
		panic("eventsim: scheduling event at NaN time")
	}
	e.seq++
	heap.Push(&e.events, &Event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run dt after the current time.
func (e *Engine) After(dt units.Seconds, fn func()) {
	if dt < 0 {
		panic(fmt.Sprintf("eventsim: negative delay %v", dt))
	}
	e.At(e.now+dt, fn)
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

// Step fires the earliest event, advancing the clock to its timestamp.
// It reports false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*Event)
	e.now = ev.at
	ev.fn()
	return true
}

// Run fires events until the queue drains, then closes all registered
// power meters at the final timestamp.  It returns the end time.
func (e *Engine) Run() units.Seconds {
	for e.Step() {
	}
	for _, m := range e.meters {
		m.sync(e.now)
	}
	return e.now
}

// RunUntil fires events with timestamps <= deadline.  Events beyond the
// deadline stay queued.  The clock lands exactly on the deadline.
func (e *Engine) RunUntil(deadline units.Seconds) {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	for _, m := range e.meters {
		m.sync(e.now)
	}
}

// NewMeter creates a power meter bound to this engine's clock, starting
// at the given baseline power (typically the device's idle draw).
func (e *Engine) NewMeter(name string, baseline units.Watts) *PowerMeter {
	m := &PowerMeter{name: name, engine: e, power: baseline, lastT: e.now}
	e.meters = append(e.meters, m)
	return m
}

// PowerSample is one step of a recorded power trace: the meter held
// Power from time T until the next sample's T.
type PowerSample struct {
	T     units.Seconds
	Power units.Watts
}

// PowerMeter integrates a piecewise-constant power trace into energy.
// Every SetPower call closes the previous constant segment.
type PowerMeter struct {
	name   string
	engine *Engine
	power  units.Watts
	lastT  units.Seconds
	energy units.Joules
	peak   units.Watts

	tracing bool
	trace   []PowerSample
}

// Name reports the meter's label (used in energy-split reports).
func (m *PowerMeter) Name() string { return m.name }

// SetPower changes the instantaneous power from now on.
func (m *PowerMeter) SetPower(p units.Watts) {
	m.sync(m.engine.now)
	m.power = p
	if p > m.peak {
		m.peak = p
	}
	if m.tracing {
		m.trace = append(m.trace, PowerSample{T: m.engine.now, Power: p})
	}
}

// EnableTrace starts recording every power step (exact, event-driven —
// not sampled), beginning with the current level.
func (m *PowerMeter) EnableTrace() {
	if !m.tracing {
		m.tracing = true
		m.trace = append(m.trace, PowerSample{T: m.engine.now, Power: m.power})
	}
}

// Trace reports the recorded power steps (nil unless EnableTrace ran).
func (m *PowerMeter) Trace() []PowerSample { return m.trace }

// Now reports the meter's clock (the engine's virtual time), letting
// consumers evaluate time-dependent models such as thermal RC curves.
func (m *PowerMeter) Now() units.Seconds { return m.engine.Now() }

// AddPower adjusts the instantaneous power by delta (may be negative).
func (m *PowerMeter) AddPower(delta units.Watts) {
	m.SetPower(m.power + delta)
}

// Power reports the current instantaneous power.
func (m *PowerMeter) Power() units.Watts {
	return m.power
}

// Peak reports the maximum instantaneous power seen so far.
func (m *PowerMeter) Peak() units.Watts { return m.peak }

// Energy reports the energy integrated up to the engine's current time.
func (m *PowerMeter) Energy() units.Joules {
	m.sync(m.engine.now)
	return m.energy
}

// sync integrates the running segment up to t.
func (m *PowerMeter) sync(t units.Seconds) {
	if t < m.lastT {
		return
	}
	m.energy += units.Energy(m.power, t-m.lastT)
	m.lastT = t
}

// Reset zeroes the accumulated energy (the current power level is kept).
// Used between the calibration pass and the measured pass of a run.
func (m *PowerMeter) Reset() {
	m.sync(m.engine.now)
	m.energy = 0
	m.peak = m.power
}

package eventsim

import (
	"testing"

	"repro/internal/units"
)

// firing records one event execution: the order in which the event was
// handed to the engine, and the clock when it fired.
type firing struct {
	schedOrder int
	at         units.Seconds
}

// runFuzzProgram decodes fuzz bytes into a deterministic scheduling
// program and executes it.  Three bytes per instruction: opcode, then a
// 16-bit operand.  Offsets are quantised to a coarse grid so
// adversarial inputs keep producing timestamp collisions, the case the
// FIFO tie-break exists for.  Negative and NaN times cannot be encoded
// — the engine rejects them by panicking, which is its documented
// contract, not a fuzz finding.
func runFuzzProgram(data []byte) ([]firing, units.Joules, units.Seconds) {
	e := NewEngine()
	m := e.NewMeter("GPU0", 10)

	var fired []firing
	sched := 0
	// next must be called exactly when the event is handed to the
	// engine, so schedOrder mirrors the engine's internal sequence —
	// including for events scheduled from inside other events.
	next := func() func() {
		id := sched
		sched++
		return func() { fired = append(fired, firing{schedOrder: id, at: e.Now()}) }
	}

	const maxOps = 64
	for i := 0; i+2 < len(data) && i/3 < maxOps; i += 3 {
		op := data[i] % 4
		v := uint16(data[i+1])<<8 | uint16(data[i+2])
		offset := units.Seconds(float64(v%32) * 0.25)
		switch op {
		case 0: // absolute schedule at now+offset
			e.At(e.Now()+offset, next())
		case 1: // relative schedule
			e.After(offset, next())
		case 2: // nested: the event schedules a follow-up when it fires
			cb := next()
			delta := units.Seconds(float64(v%8) * 0.125)
			e.After(offset, func() {
				cb()
				e.After(delta, next())
			})
		case 3: // power step riding on an event
			cb := next()
			watts := units.Watts(v % 300)
			e.After(offset, func() {
				cb()
				m.SetPower(watts)
			})
		}
	}
	end := e.Run()
	return fired, m.Energy(), end
}

// FuzzEventOrdering throws adversarial schedules at the engine —
// colliding timestamps, zero delays, events scheduled from inside
// events — and checks the determinism contract the parallel executor
// builds on: time never goes backwards, same-time events fire in the
// order they were scheduled, Run's end time covers every firing, and
// an identical program replays to the identical firing sequence and
// energy integral.
func FuzzEventOrdering(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{0, 0, 1, 1, 0, 1, 2, 0, 1, 3, 0, 200})            // one tick, every opcode
	f.Add([]byte{0, 0, 8, 0, 0, 8, 1, 0, 8, 2, 0, 8})              // four-way timestamp collision
	f.Add([]byte{2, 0, 0, 2, 0, 0, 2, 0, 0})                       // zero-delay nested cascades
	f.Add([]byte{3, 1, 44, 0, 0, 31, 3, 0, 150, 1, 2, 7, 2, 3, 9}) // power steps between collisions

	f.Fuzz(func(t *testing.T, data []byte) {
		fired, energy, end := runFuzzProgram(data)

		var last units.Seconds
		for i, fr := range fired {
			if fr.at < last {
				t.Fatalf("firing %d: clock went backwards, %v after %v", i, fr.at, last)
			}
			if i > 0 && fr.at == fired[i-1].at && fr.schedOrder < fired[i-1].schedOrder {
				t.Fatalf("firing %d: same-time events out of scheduling order (%d fired after %d at %v)",
					i, fr.schedOrder, fired[i-1].schedOrder, fr.at)
			}
			last = fr.at
		}
		if end < last {
			t.Fatalf("Run() returned %v, before the last firing at %v", end, last)
		}
		if energy < 0 {
			t.Fatalf("negative energy %v", energy)
		}

		fired2, energy2, end2 := runFuzzProgram(data)
		if len(fired2) != len(fired) || energy2 != energy || end2 != end {
			t.Fatalf("replay diverged: %d firings / %v J / %v vs %d / %v / %v",
				len(fired), energy, end, len(fired2), energy2, end2)
		}
		for i := range fired {
			if fired[i] != fired2[i] {
				t.Fatalf("replay diverged at firing %d: %+v vs %+v", i, fired[i], fired2[i])
			}
		}
	})
}

package gpu

import (
	"fmt"
	"sync"

	"repro/internal/prec"
	"repro/internal/units"
)

// Arch describes one GPU architecture: board limits, occupancy behaviour
// and per-precision power/performance curves.
type Arch struct {
	// Name is the marketing name used in the paper ("A100-SXM4-40GB").
	Name string
	// TDP is the default (and maximum) power limit.
	TDP units.Watts
	// MinPower is the lowest cap the driver accepts.
	MinPower units.Watts
	// IdlePower is the draw with no kernel resident.
	IdlePower units.Watts
	// MemoryBytes is the device memory capacity.
	MemoryBytes units.Bytes
	// MaxClock is the boost SM clock (x = 1).
	MaxClock units.Hertz
	// HalfWork is the per-kernel work at which occupancy reaches 1/2;
	// small launches underfill the device (Fig. 1's small-matrix effect).
	HalfWork units.Flops
	// LaunchOverhead is the fixed per-kernel launch latency.
	LaunchOverhead units.Seconds
	// Curves maps precision to the fitted power/perf curve.
	Curves map[prec.Precision]Curve
	// Thermal is the board's RC thermal model.
	Thermal Thermal
}

// Curve returns the fitted curve for p.
func (a *Arch) Curve(p prec.Precision) Curve { return a.Curves[p] }

// Occupancy reports the fraction of the device a kernel of the given
// work fills: work/(work + HalfWork), a saturating curve matching the
// paper's observation that small matrices "do not fill the GPU workload
// enough".
func (a *Arch) Occupancy(work units.Flops) float64 {
	if work <= 0 {
		return 0
	}
	return float64(work) / float64(work+a.HalfWork)
}

// ValidateCap reports an error when the cap is outside the driver's
// accepted [MinPower, TDP] window (cap == 0 means uncapped and is valid).
func (a *Arch) ValidateCap(cap units.Watts) error {
	if cap == 0 {
		return nil
	}
	if cap < a.MinPower || cap > a.TDP {
		return fmt.Errorf("gpu: %s: power limit %v outside [%v, %v]", a.Name, cap, a.MinPower, a.TDP)
	}
	return nil
}

// The three architectures of the paper's test beds (§IV-A, Table II).
// Calibration targets come from Table I (best cap fraction and efficiency
// saving); slowdowns not quoted by the paper are set to plausible values
// consistent with Fig. 1-style curves (and constrained by draw <= TDP).
var (
	archOnce sync.Once
	archs    map[string]*Arch
)

// Architecture names.
const (
	V100PCIeName = "V100-PCIE-32GB"
	A100PCIeName = "A100-PCIE-40GB"
	A100SXM4Name = "A100-SXM4-40GB"
)

func buildArchs() {
	archs = map[string]*Arch{
		V100PCIeName: {
			Name:           V100PCIeName,
			TDP:            250,
			MinPower:       100,
			IdlePower:      28,
			MemoryBytes:    32 * units.Giga,
			MaxClock:       units.Hertz(1380 * units.Mega),
			HalfWork:       units.Flops(1.5e9),
			LaunchOverhead: 9e-6,
			Curves: map[prec.Precision]Curve{
				// Table I: best cap 60 % TDP, +18.52 % efficiency.
				prec.Double: MustCalibrate(CalibrationTarget{
					TDP: 250, BestCapFrac: 0.60, Gain: 0.1852, Slowdown: 0.22,
					XMin: 135.0 / 1380.0, PeakRate: units.GFlopsPerSec(6600),
				}),
				// Table I: best cap 58 % TDP, +20.74 % efficiency.
				prec.Single: MustCalibrate(CalibrationTarget{
					TDP: 250, BestCapFrac: 0.58, Gain: 0.2074, Slowdown: 0.25,
					XMin: 135.0 / 1380.0, PeakRate: units.GFlopsPerSec(13500),
				}),
			},
		},
		A100PCIeName: {
			Name:           A100PCIeName,
			TDP:            250,
			MinPower:       150,
			IdlePower:      38,
			MemoryBytes:    40 * units.Giga,
			MaxClock:       units.Hertz(1410 * units.Mega),
			HalfWork:       units.Flops(4e9),
			LaunchOverhead: 8e-6,
			Curves: map[prec.Precision]Curve{
				// Table I: best cap 78 % TDP, +10.92 % efficiency.
				prec.Double: MustCalibrate(CalibrationTarget{
					TDP: 250, BestCapFrac: 0.78, Gain: 0.1092, Slowdown: 0.10,
					XMin: 210.0 / 1410.0, PeakRate: units.GFlopsPerSec(16500),
				}),
				// Table I: best cap 60 % TDP, +23.17 % efficiency.
				prec.Single: MustCalibrate(CalibrationTarget{
					TDP: 250, BestCapFrac: 0.60, Gain: 0.2317, Slowdown: 0.25,
					XMin: 210.0 / 1410.0, PeakRate: units.GFlopsPerSec(17500),
				}),
			},
		},
		A100SXM4Name: {
			Name:           A100SXM4Name,
			TDP:            400,
			MinPower:       100,
			IdlePower:      52,
			MemoryBytes:    40 * units.Giga,
			MaxClock:       units.Hertz(1410 * units.Mega),
			HalfWork:       units.Flops(5e9),
			LaunchOverhead: 8e-6,
			Curves: map[prec.Precision]Curve{
				// Table I: best cap 54 % TDP, +28.81 % efficiency;
				// §II quotes the 22.93 % slowdown at that cap.
				prec.Double: MustCalibrate(CalibrationTarget{
					TDP: 400, BestCapFrac: 0.54, Gain: 0.2881, Slowdown: 0.2293,
					XMin: 210.0 / 1410.0, PeakRate: units.GFlopsPerSec(17800),
				}),
				// Table I: best cap 40 % TDP, +27.76 % efficiency.
				prec.Single: MustCalibrate(CalibrationTarget{
					TDP: 400, BestCapFrac: 0.40, Gain: 0.2776, Slowdown: 0.20,
					XMin: 210.0 / 1410.0, PeakRate: units.GFlopsPerSec(18500),
				}),
			},
		},
	}
}

// Lookup returns the named architecture, or an error listing the known
// names.
func Lookup(name string) (*Arch, error) {
	archOnce.Do(func() {
		buildArchs()
		for _, a := range archs {
			a.Thermal = thermalFor(a.TDP)
		}
	})
	a, ok := archs[name]
	if !ok {
		return nil, fmt.Errorf("gpu: unknown architecture %q (known: %s, %s, %s)",
			name, V100PCIeName, A100PCIeName, A100SXM4Name)
	}
	return a, nil
}

// V100PCIe returns the Tesla V100-PCIE-32GB model.
func V100PCIe() *Arch { return mustLookup(V100PCIeName) }

// A100PCIe returns the A100-PCIE-40GB model.
func A100PCIe() *Arch { return mustLookup(A100PCIeName) }

// A100SXM4 returns the A100-SXM4-40GB model.
func A100SXM4() *Arch { return mustLookup(A100SXM4Name) }

func mustLookup(name string) *Arch {
	a, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return a
}

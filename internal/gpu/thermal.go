package gpu

import (
	"math"

	"repro/internal/eventsim"
	"repro/internal/units"
)

// Thermal is a first-order (RC) package thermal model:
//
//	dT/dt = (T_ss(P) - T) / Tau,   T_ss(P) = Ambient + RthCPerW * P
//
// Power capping lowers the steady-state temperature linearly with the
// draw — the effect the power/frequency-capping literature the paper
// cites (Patki et al.) measures on real boards.
type Thermal struct {
	// AmbientC is the inlet temperature.
	AmbientC float64
	// RthCPerW is the junction-to-ambient thermal resistance.
	RthCPerW float64
	// TauS is the package thermal time constant in seconds.
	TauS float64
	// SlowdownC is the hardware thermal-throttle threshold
	// (informational; the power model already caps draw).
	SlowdownC float64
}

// SteadyStateC reports the equilibrium temperature at constant power.
func (th Thermal) SteadyStateC(p units.Watts) float64 {
	return th.AmbientC + th.RthCPerW*float64(p)
}

// TemperatureAt integrates the RC model over a recorded power trace
// and reports the temperature at time t.  The trace is piecewise
// constant, so each segment is an exact exponential step.  Before the
// first sample the device sits at ambient.
func (th Thermal) TemperatureAt(trace []eventsim.PowerSample, t units.Seconds) float64 {
	temp := th.AmbientC
	if th.TauS <= 0 {
		if len(trace) == 0 {
			return temp
		}
		// Instant model: steady state of the last sample before t.
		for _, s := range trace {
			if s.T > t {
				break
			}
			temp = th.SteadyStateC(s.Power)
		}
		return temp
	}
	prevT := units.Seconds(0)
	prevP := units.Watts(0)
	first := true
	step := func(until units.Seconds) {
		dt := float64(until - prevT)
		if dt <= 0 {
			return
		}
		ss := th.SteadyStateC(prevP)
		temp = ss + (temp-ss)*math.Exp(-dt/th.TauS)
	}
	for _, s := range trace {
		if s.T >= t {
			break
		}
		if first {
			prevT = s.T
			prevP = s.Power
			first = false
			continue
		}
		step(s.T)
		prevT, prevP = s.T, s.Power
	}
	if !first {
		step(t)
	}
	return temp
}

// TempSample is one point of a temperature timeline.
type TempSample struct {
	T     units.Seconds
	TempC float64
}

// TemperatureTrace samples the RC model at a fixed period over [0, end].
func (th Thermal) TemperatureTrace(trace []eventsim.PowerSample, end, period units.Seconds) []TempSample {
	if period <= 0 {
		period = end / 100
	}
	var out []TempSample
	for t := units.Seconds(0); t <= end+period/2; t += period {
		out = append(out, TempSample{T: t, TempC: th.TemperatureAt(trace, t)})
	}
	return out
}

// defaultThermals gives plausible board-level constants per form factor
// (SXM sinks are beefier than PCIe blowers).
func thermalFor(tdp units.Watts) Thermal {
	switch {
	case tdp >= 400: // SXM4
		return Thermal{AmbientC: 30, RthCPerW: 0.135, TauS: 9, SlowdownC: 85}
	default: // PCIe
		return Thermal{AmbientC: 32, RthCPerW: 0.20, TauS: 12, SlowdownC: 85}
	}
}

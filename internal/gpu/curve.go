// Package gpu models NVIDIA data-centre GPUs under static power capping.
//
// The model reproduces the empirical behaviour the paper measures with
// nvidia-smi power limits: capping forces DVFS throttling, performance
// degrades sublinearly with the cap, and energy efficiency (flop/s/W)
// peaks strictly below TDP.  Per (architecture, precision) the model is a
// three-parameter curve fitted — by the solver in calibrate.go — to the
// paper's measured optima (Table I/II), so the measured trade-off surface
// is an emergent property, not a lookup table.
package gpu

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// Curve describes how one kernel class (GEMM-like, per precision) behaves
// on one architecture as the clock fraction x = f/f_max varies.
//
//	perf(x)  = PeakRate * occupancy * x^Alpha
//	power(x) = Draw * (Sigma + (1-Sigma) * x^Beta)      (active, full occupancy)
//
// A power cap C picks the largest feasible x with power(x) <= C.  Below
// the minimum clock the hardware duty-cycles: performance scales with the
// remaining power budget while the draw pins to the cap.
type Curve struct {
	// PeakRate is the sustained kernel throughput at full clock and full
	// occupancy (cuBLAS-style sustained rate, not the datasheet peak).
	PeakRate units.FlopsPerSec
	// Draw is the power the kernel pulls at full clock, full occupancy,
	// with no cap.  Always <= TDP.
	Draw units.Watts
	// Sigma is the non-clock-scaling share of Draw (leakage, HBM refresh,
	// VRM and fan overheads while a kernel is resident).
	Sigma float64
	// Alpha is the performance-vs-clock exponent.  Values below 1 reflect
	// memory/latency-bound phases that do not slow down with SM clocks.
	Alpha float64
	// Beta is the dynamic-power-vs-clock exponent (f*V^2 with V tracking
	// f gives the classical cube).
	Beta float64
	// XMin is the minimum clock fraction the DVFS table exposes
	// (e.g. 210 MHz / 1410 MHz on A100).
	XMin float64
}

// Validate reports an error for physically meaningless parameters.
func (c Curve) Validate() error {
	switch {
	case c.PeakRate <= 0:
		return fmt.Errorf("gpu: curve peak rate %v must be positive", c.PeakRate)
	case c.Draw <= 0:
		return fmt.Errorf("gpu: curve draw %v must be positive", c.Draw)
	case c.Sigma <= 0 || c.Sigma >= 1:
		return fmt.Errorf("gpu: curve sigma %v must be in (0,1)", c.Sigma)
	case c.Alpha <= 0 || c.Alpha > 3:
		return fmt.Errorf("gpu: curve alpha %v must be in (0,3]", c.Alpha)
	case c.Beta < 1 || c.Beta > 4:
		return fmt.Errorf("gpu: curve beta %v must be in [1,4]", c.Beta)
	case c.XMin <= 0 || c.XMin >= 1:
		return fmt.Errorf("gpu: curve xmin %v must be in (0,1)", c.XMin)
	}
	return nil
}

// activePower reports the full-occupancy active power at clock fraction x.
func (c Curve) activePower(x float64) units.Watts {
	return units.Watts(float64(c.Draw) * (c.Sigma + (1-c.Sigma)*math.Pow(x, c.Beta)))
}

// OperatingPoint is the resolved DVFS state for a cap and occupancy.
type OperatingPoint struct {
	// X is the clock fraction the device settles at.
	X float64
	// Duty is the fraction of cycles not gated away; below 1 only when the
	// cap is under the minimum-clock power (hardware duty-cycling).
	Duty float64
	// Power is the actual draw while the kernel runs.
	Power units.Watts
	// Rate is the achieved throughput (occupancy already applied).
	Rate units.FlopsPerSec
	// Throttled reports whether the cap forced the clock below maximum.
	Throttled bool
}

// Operate resolves the operating point for a power cap and a kernel
// occupancy in (0,1].  cap <= 0 means "no cap" (limited only by Draw).
//
// Occupancy scales both the achievable rate (fewer SMs busy) and the
// power above the static floor (idle SMs are clock-gated).
func (c Curve) Operate(cap units.Watts, occupancy float64) OperatingPoint {
	occ := units.Clamp(occupancy, 1e-6, 1)
	powerAt := func(x float64) units.Watts {
		static := float64(c.Draw) * c.Sigma
		dynamic := float64(c.Draw) * (1 - c.Sigma) * math.Pow(x, c.Beta)
		return units.Watts(static + dynamic*occ)
	}
	rateAt := func(x float64) units.FlopsPerSec {
		return units.FlopsPerSec(float64(c.PeakRate) * occ * math.Pow(x, c.Alpha))
	}
	full := powerAt(1)
	if cap <= 0 || cap >= full {
		return OperatingPoint{X: 1, Duty: 1, Power: full, Rate: rateAt(1)}
	}
	// Solve powerAt(x) = cap for x.
	static := float64(c.Draw) * c.Sigma
	dyn := (float64(cap) - static) / (float64(c.Draw) * (1 - c.Sigma) * occ)
	if dyn > 0 {
		x := math.Pow(dyn, 1/c.Beta)
		if x >= c.XMin {
			if x > 1 {
				x = 1
			}
			return OperatingPoint{X: x, Duty: 1, Power: powerAt(x), Rate: rateAt(x), Throttled: true}
		}
	}
	// Even the minimum clock exceeds the cap: the power manager
	// duty-cycles the SMs.  Draw pins to the cap; throughput scales with
	// the share of the minimum-clock power the cap affords.
	floor := powerAt(c.XMin)
	duty := units.Clamp(float64(cap)/float64(floor), 0.02, 1)
	rate := units.FlopsPerSec(float64(rateAt(c.XMin)) * duty)
	return OperatingPoint{X: c.XMin, Duty: duty, Power: cap, Rate: rate, Throttled: true}
}

// Efficiency reports flop/s/W at the operating point for cap and occupancy.
func (c Curve) Efficiency(cap units.Watts, occupancy float64) float64 {
	op := c.Operate(cap, occupancy)
	return units.Efficiency(op.Rate, op.Power)
}

// BestCap scans caps in [lo, hi] with the given step and reports the cap
// maximising efficiency at the given occupancy, mirroring the paper's
// 2 %-of-TDP sweep protocol.
func (c Curve) BestCap(lo, hi, step units.Watts, occupancy float64) (best units.Watts, eff float64) {
	if step <= 0 {
		step = (hi - lo) / 100
	}
	for cap := lo; cap <= hi+step/2; cap += step {
		if e := c.Efficiency(cap, occupancy); e > eff {
			eff, best = e, cap
		}
	}
	return best, eff
}

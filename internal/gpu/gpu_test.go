package gpu

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/eventsim"
	"repro/internal/prec"
	"repro/internal/units"
)

// tableI mirrors the paper's Table I: the best-cap fraction and the
// efficiency saving that the fitted model must reproduce when re-swept.
var tableI = []struct {
	arch     string
	p        prec.Precision
	bestFrac float64
	gain     float64
}{
	{A100SXM4Name, prec.Single, 0.40, 0.2776},
	{A100SXM4Name, prec.Double, 0.54, 0.2881},
	{A100PCIeName, prec.Single, 0.60, 0.2317},
	{A100PCIeName, prec.Double, 0.78, 0.1092},
	{V100PCIeName, prec.Single, 0.58, 0.2074},
	{V100PCIeName, prec.Double, 0.60, 0.1852},
}

// TestTableIRoundTrip re-runs the paper's sweep protocol (2 % of TDP
// steps from the minimum cap to TDP) against the fitted curves and
// checks that Table I's optima emerge.
func TestTableIRoundTrip(t *testing.T) {
	for _, row := range tableI {
		arch, err := Lookup(row.arch)
		if err != nil {
			t.Fatal(err)
		}
		curve := arch.Curve(row.p)
		step := units.Watts(float64(arch.TDP) * 0.02)
		best, bestEff := curve.BestCap(arch.MinPower, arch.TDP, step, 1)
		wantCap := float64(arch.TDP) * row.bestFrac
		if math.Abs(float64(best)-wantCap) > float64(step)*1.01 {
			t.Errorf("%s %s: best cap = %v, want ~%.0f W", row.arch, row.p, best, wantCap)
		}
		base := curve.Efficiency(arch.TDP, 1)
		gain := bestEff/base - 1
		if math.Abs(gain-row.gain) > 0.03 {
			t.Errorf("%s %s: efficiency gain = %.4f, want %.4f", row.arch, row.p, gain, row.gain)
		}
	}
}

// TestQuotedSlowdown checks the one slowdown figure the paper quotes
// (§II: 22.93 % for DGEMM on A100-SXM4 at the 54 % cap).
func TestQuotedSlowdown(t *testing.T) {
	arch := A100SXM4()
	curve := arch.Curve(prec.Double)
	capped := curve.Operate(units.Watts(0.54*float64(arch.TDP)), 1)
	full := curve.Operate(0, 1)
	slow := 1 - float64(capped.Rate)/float64(full.Rate)
	if math.Abs(slow-0.2293) > 0.02 {
		t.Errorf("slowdown at 54%% cap = %.4f, want ~0.2293", slow)
	}
}

// TestEfficiencyUnimodal verifies the Fig.-1 shape: efficiency rises,
// peaks below TDP, then falls, for every architecture and precision.
func TestEfficiencyUnimodal(t *testing.T) {
	for _, row := range tableI {
		arch, _ := Lookup(row.arch)
		curve := arch.Curve(row.p)
		var effs []float64
		for frac := 0.30; frac <= 1.0001; frac += 0.02 {
			effs = append(effs, curve.Efficiency(units.Watts(frac*float64(arch.TDP)), 1))
		}
		// Count direction changes; a unimodal curve has at most one.
		changes := 0
		rising := true
		for i := 1; i < len(effs); i++ {
			tol := 1e-6 * math.Max(effs[i], effs[i-1])
			if rising && effs[i] < effs[i-1]-tol {
				rising = false
				changes++
			} else if !rising && effs[i] > effs[i-1]+tol {
				rising = true
				changes++
			}
		}
		if changes > 1 {
			t.Errorf("%s %s: efficiency curve not unimodal (%d direction changes)", row.arch, row.p, changes)
		}
		if effs[len(effs)-1] >= effs[0] && row.bestFrac < 0.9 {
			// efficiency at TDP should be below the capped region
			peak := 0.0
			for _, e := range effs {
				peak = math.Max(peak, e)
			}
			if peak <= effs[len(effs)-1]*1.01 {
				t.Errorf("%s %s: no interior efficiency peak", row.arch, row.p)
			}
		}
	}
}

func TestOperateRespectsCap(t *testing.T) {
	f := func(rawCap uint16, rawOcc uint8) bool {
		arch := A100SXM4()
		curve := arch.Curve(prec.Double)
		cap := units.Watts(100 + float64(rawCap%300)) // 100..400 W
		occ := 0.05 + 0.95*float64(rawOcc)/255
		op := curve.Operate(cap, occ)
		// Power never exceeds the cap (tiny tolerance for float noise).
		if float64(op.Power) > float64(cap)*(1+1e-9) {
			return false
		}
		// Rate and power are positive and finite.
		return op.Rate > 0 && op.Power > 0 &&
			!math.IsInf(float64(op.Rate), 0) && !math.IsNaN(float64(op.Rate))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOperateMonotonicInCap(t *testing.T) {
	arch := A100SXM4()
	curve := arch.Curve(prec.Double)
	prevRate := units.FlopsPerSec(0)
	for cap := 60.0; cap <= 400; cap += 5 {
		op := curve.Operate(units.Watts(cap), 1)
		if op.Rate < prevRate-1 {
			t.Fatalf("rate decreased when cap rose to %v W: %v -> %v", cap, prevRate, op.Rate)
		}
		prevRate = op.Rate
	}
}

func TestDutyCyclingBelowMinClock(t *testing.T) {
	arch := A100SXM4()
	curve := arch.Curve(prec.Double)
	// At the platform's 100 W L-state, the A100-SXM4 model must duty
	// cycle (the min-clock DGEMM draw exceeds 100 W), losing most of its
	// performance — the paper's LLLL configurations show roughly -80 %
	// application performance.
	op := curve.Operate(100, 1)
	if op.Duty >= 1 {
		t.Fatalf("expected duty cycling at 100 W, got duty=%v", op.Duty)
	}
	if op.Power != 100 {
		t.Errorf("duty-cycled power = %v, want pinned to the 100 W cap", op.Power)
	}
	full := curve.Operate(0, 1)
	lost := 1 - float64(op.Rate)/float64(full.Rate)
	if lost < 0.6 || lost > 0.95 {
		t.Errorf("kernel slowdown at 100 W = %.2f, want a deep (0.6-0.95) loss", lost)
	}
}

func TestOccupancySaturates(t *testing.T) {
	arch := A100SXM4()
	if got := arch.Occupancy(0); got != 0 {
		t.Errorf("occupancy(0) = %v", got)
	}
	small := arch.Occupancy(1e8)
	large := arch.Occupancy(4e11)
	if !(small < large && large < 1) {
		t.Errorf("occupancy not saturating: small=%v large=%v", small, large)
	}
	if large < 0.95 {
		t.Errorf("occupancy at 5760-tile GEMM work = %v, want near 1", large)
	}
}

func TestSmallKernelsLessEfficient(t *testing.T) {
	// Fig. 1: smaller matrices have lower best-case efficiency.
	arch := A100SXM4()
	curve := arch.Curve(prec.Double)
	occSmall := arch.Occupancy(2 * 1024 * 1024 * 1024) // ~1024-tile
	occLarge := arch.Occupancy(2.7e11)                 // 5120-tile
	_, effSmall := curve.BestCap(arch.MinPower, arch.TDP, 8, occSmall)
	_, effLarge := curve.BestCap(arch.MinPower, arch.TDP, 8, occLarge)
	if effSmall >= effLarge {
		t.Errorf("small-kernel efficiency %v >= large-kernel %v", effSmall, effLarge)
	}
}

func TestCalibrateRejectsBadTargets(t *testing.T) {
	base := CalibrationTarget{TDP: 400, BestCapFrac: 0.5, Gain: 0.2, Slowdown: 0.2, PeakRate: units.GFlopsPerSec(10000)}
	bad := []func(*CalibrationTarget){
		func(t *CalibrationTarget) { t.TDP = 0 },
		func(t *CalibrationTarget) { t.BestCapFrac = 1.2 },
		func(t *CalibrationTarget) { t.Gain = -0.1 },
		func(t *CalibrationTarget) { t.Slowdown = 1.5 },
		func(t *CalibrationTarget) { t.PeakRate = 0 },
		// draw = (1+gain)*cap/(1-s) > TDP: cap 0.9*400=360, gain 0.4, s 0.4
		func(t *CalibrationTarget) { t.BestCapFrac, t.Gain, t.Slowdown = 0.9, 0.4, 0.4 },
	}
	for i, mutate := range bad {
		tt := base
		mutate(&tt)
		if _, err := Calibrate(tt); err == nil {
			t.Errorf("case %d: Calibrate accepted invalid target %+v", i, tt)
		}
	}
	if _, err := Calibrate(base); err != nil {
		t.Errorf("Calibrate rejected valid target: %v", err)
	}
}

func TestCalibrateRoundTripProperty(t *testing.T) {
	// Property: for random feasible targets, the fitted curve reproduces
	// the requested optimum location, gain and slowdown.
	f := func(rBest, rGain, rSlow uint8) bool {
		bestFrac := 0.4 + 0.4*float64(rBest)/255 // 0.4..0.8
		slow := 0.08 + 0.25*float64(rSlow)/255   // 0.08..0.33
		maxGain := (1-slow)/bestFrac - 1         // keep draw <= TDP
		gain := 0.05 + (maxGain-0.06)*float64(rGain)/255
		if gain <= 0.05 || gain <= slow/4 {
			return true // degenerate corner, skip
		}
		target := CalibrationTarget{
			TDP: 400, BestCapFrac: bestFrac, Gain: gain, Slowdown: slow,
			PeakRate: units.GFlopsPerSec(10000),
		}
		curve, err := Calibrate(target)
		if err != nil {
			return true // infeasible combination, acceptable
		}
		cap := units.Watts(400 * bestFrac)
		op := curve.Operate(cap, 1)
		full := curve.Operate(0, 1)
		gotSlow := 1 - float64(op.Rate)/float64(full.Rate)
		gotGain := units.Efficiency(op.Rate, op.Power)/units.Efficiency(full.Rate, full.Power) - 1
		return math.Abs(gotSlow-slow) < 0.02 && math.Abs(gotGain-gain) < 0.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDevicePowerLimit(t *testing.T) {
	d := NewDevice(A100SXM4(), 0)
	if got := d.PowerLimit(); got != 400 {
		t.Errorf("default limit = %v, want 400 W", got)
	}
	if !d.Uncapped() {
		t.Error("new device should be uncapped")
	}
	if err := d.SetPowerLimit(216); err != nil {
		t.Fatalf("SetPowerLimit(216): %v", err)
	}
	if got := d.PowerLimit(); got != 216 {
		t.Errorf("limit = %v, want 216 W", got)
	}
	if d.Uncapped() {
		t.Error("capped device reported uncapped")
	}
	if err := d.SetPowerLimit(50); err == nil {
		t.Error("SetPowerLimit below MinPower accepted")
	}
	if err := d.SetPowerLimit(500); err == nil {
		t.Error("SetPowerLimit above TDP accepted")
	}
	if err := d.SetPowerLimit(0); err != nil {
		t.Errorf("reset to default: %v", err)
	}
	if !d.Uncapped() {
		t.Error("reset device should be uncapped")
	}
}

func TestKernelTimeIncludesOverhead(t *testing.T) {
	d := NewDevice(A100SXM4(), 0)
	dt, op := d.KernelTime(prec.Double, 1e6, 1) // tiny kernel
	if float64(dt) < float64(d.Arch().LaunchOverhead) {
		t.Errorf("kernel time %v below launch overhead", dt)
	}
	if op.Rate <= 0 {
		t.Error("operating point has no rate")
	}
	big, _ := d.KernelTime(prec.Double, 3.8e11, 1) // 5760-tile dgemm
	if big <= dt {
		t.Error("larger kernel not slower")
	}
	// 5760-tile dgemm at ~17.8 Tflop/s should take ~21 ms.
	if float64(big) < 0.015 || float64(big) > 0.05 {
		t.Errorf("5760-tile dgemm time = %v, want ~0.02 s", big)
	}
}

func TestEfficiencyFactorDeratesRate(t *testing.T) {
	d := NewDevice(V100PCIe(), 0)
	full := d.Operate(prec.Double, 1e10, 1)
	derated := d.Operate(prec.Double, 1e10, 0.5)
	if math.Abs(float64(derated.Rate)/float64(full.Rate)-0.5) > 1e-9 {
		t.Errorf("efficiency factor not applied: %v vs %v", derated.Rate, full.Rate)
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("H100"); err == nil {
		t.Error("Lookup of unknown architecture succeeded")
	}
	for _, name := range []string{V100PCIeName, A100PCIeName, A100SXM4Name} {
		a, err := Lookup(name)
		if err != nil || a.Name != name {
			t.Errorf("Lookup(%q) = %v, %v", name, a, err)
		}
	}
}

func TestCurveValidate(t *testing.T) {
	good := Curve{PeakRate: 1e12, Draw: 300, Sigma: 0.5, Alpha: 0.5, Beta: 3, XMin: 0.15}
	if err := good.Validate(); err != nil {
		t.Errorf("valid curve rejected: %v", err)
	}
	bad := []Curve{
		{PeakRate: 0, Draw: 300, Sigma: 0.5, Alpha: 0.5, Beta: 3, XMin: 0.15},
		{PeakRate: 1, Draw: 0, Sigma: 0.5, Alpha: 0.5, Beta: 3, XMin: 0.15},
		{PeakRate: 1, Draw: 300, Sigma: 1.5, Alpha: 0.5, Beta: 3, XMin: 0.15},
		{PeakRate: 1, Draw: 300, Sigma: 0.5, Alpha: 0, Beta: 3, XMin: 0.15},
		{PeakRate: 1, Draw: 300, Sigma: 0.5, Alpha: 0.5, Beta: 9, XMin: 0.15},
		{PeakRate: 1, Draw: 300, Sigma: 0.5, Alpha: 0.5, Beta: 3, XMin: 1.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid curve accepted", i)
		}
	}
}

func TestThermalStepResponse(t *testing.T) {
	th := Thermal{AmbientC: 30, RthCPerW: 0.1, TauS: 10, SlowdownC: 85}
	// Constant 300 W from t=0: closed form T(t) = ss + (amb-ss)e^{-t/tau}.
	trace := []eventsim.PowerSample{{T: 0, Power: 300}}
	ss := th.SteadyStateC(300)
	if ss != 60 {
		t.Fatalf("steady state = %v, want 60", ss)
	}
	for _, tt := range []float64{0, 5, 10, 30, 100} {
		got := th.TemperatureAt(trace, units.Seconds(tt))
		want := ss + (30-ss)*math.Exp(-tt/10)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("T(%v) = %v, want %v", tt, got, want)
		}
	}
	// Long-run temperature approaches steady state.
	if got := th.TemperatureAt(trace, 1000); math.Abs(got-ss) > 1e-6 {
		t.Errorf("T(inf) = %v, want %v", got, ss)
	}
}

func TestThermalStepDown(t *testing.T) {
	th := Thermal{AmbientC: 30, RthCPerW: 0.1, TauS: 5}
	trace := []eventsim.PowerSample{{T: 0, Power: 400}, {T: 100, Power: 0}}
	hot := th.TemperatureAt(trace, 100)
	if math.Abs(hot-70) > 1e-3 {
		t.Fatalf("temp before step-down = %v, want ~70", hot)
	}
	cooled := th.TemperatureAt(trace, 130)
	if !(cooled < 35 && cooled > 30) {
		t.Errorf("temp after cooling = %v, want near ambient", cooled)
	}
}

func TestThermalCappingRunsCooler(t *testing.T) {
	arch := A100SXM4()
	curve := arch.Curve(prec.Double)
	full := curve.Operate(0, 1)
	capped := curve.Operate(216, 1)
	hot := arch.Thermal.SteadyStateC(full.Power)
	cool := arch.Thermal.SteadyStateC(capped.Power)
	if cool >= hot {
		t.Errorf("capped steady-state %v not cooler than uncapped %v", cool, hot)
	}
	if hot > arch.Thermal.SlowdownC+5 {
		t.Errorf("uncapped steady state %v far above the throttle point — implausible constants", hot)
	}
}

func TestThermalTraceSampling(t *testing.T) {
	th := Thermal{AmbientC: 30, RthCPerW: 0.1, TauS: 10}
	trace := []eventsim.PowerSample{{T: 0, Power: 200}}
	pts := th.TemperatureTrace(trace, 10, 1)
	if len(pts) != 11 {
		t.Fatalf("got %d samples", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].TempC <= pts[i-1].TempC {
			t.Fatalf("warm-up not monotone at %d", i)
		}
	}
}

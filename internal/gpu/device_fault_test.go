package gpu

import "testing"

func TestThrottleDegradesEffectiveLimit(t *testing.T) {
	d := NewDevice(A100SXM4(), 0)
	if err := d.SetPowerLimit(300); err != nil {
		t.Fatal(err)
	}
	d.SetThrottle(220)
	if !d.Throttled() {
		t.Error("Throttled() = false during a window")
	}
	if got := d.PowerLimit(); got != 220 {
		t.Errorf("PowerLimit under throttle = %v, want 220", got)
	}
	if got := d.ConfiguredLimit(); got != 300 {
		t.Errorf("ConfiguredLimit under throttle = %v, want 300 (throttle-blind)", got)
	}
	// A throttle above the cap does not raise the limit.
	d.SetThrottle(350)
	if got := d.PowerLimit(); got != 300 {
		t.Errorf("PowerLimit with throttle above cap = %v, want 300", got)
	}
	d.ClearThrottle()
	if d.Throttled() {
		t.Error("Throttled() = true after ClearThrottle")
	}
	if got := d.PowerLimit(); got != 300 {
		t.Errorf("PowerLimit after clear = %v, want 300", got)
	}
}

func TestThrottleClampsToDriverMinimum(t *testing.T) {
	d := NewDevice(A100SXM4(), 0)
	d.SetThrottle(1)
	if got, want := d.PowerLimit(), d.Arch().MinPower; got != want {
		t.Errorf("PowerLimit with tiny throttle = %v, want driver minimum %v", got, want)
	}
}

func TestMarkDeadIsIrreversible(t *testing.T) {
	d := NewDevice(A100SXM4(), 0)
	if !d.Alive() {
		t.Fatal("fresh device not alive")
	}
	d.MarkDead()
	if d.Alive() {
		t.Fatal("Alive() = true after MarkDead")
	}
	// The board state stays readable (hung-but-powered model): the cap
	// query paths must not panic, and there is no resurrection API.
	_ = d.PowerLimit()
	_ = d.ConfiguredLimit()
	if d.Alive() {
		t.Fatal("device came back to life")
	}
}

package gpu

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// CalibrationTarget states the measured optimum the paper reports for one
// (architecture, precision): where the best cap sits, how much efficiency
// it buys and how much performance it costs.  The solver turns these
// three observations into the curve parameters (Alpha, Sigma, Draw), so
// the published numbers become *outputs* of the model that tests can
// verify by re-sweeping.
type CalibrationTarget struct {
	// TDP is the board power limit (the 100% cap).
	TDP units.Watts
	// BestCapFrac is the efficiency-optimal cap as a fraction of TDP
	// (Table I: e.g. 0.54 for DGEMM on A100-SXM4).
	BestCapFrac float64
	// Gain is the relative efficiency improvement at the best cap
	// (Table I "Eff. saving": e.g. 0.2881).
	Gain float64
	// Slowdown is the relative performance loss at the best cap
	// (e.g. 0.2293 reported for DGEMM on A100-SXM4; estimated for the
	// pairs the paper does not quote).
	Slowdown float64
	// Beta is the dynamic-power exponent; 0 selects the default cube.
	Beta float64
	// XMin is the minimum clock fraction; 0 selects a default of 0.15.
	XMin float64
	// PeakRate is the sustained full-clock kernel throughput.
	PeakRate units.FlopsPerSec
}

// Calibrate fits a Curve to the target.  The derivation, for
// power(x) = D(sigma + (1-sigma) x^beta) and perf(x) = R x^alpha:
//
//   - Throttling makes the device draw exactly the cap at the optimum, so
//     the gain g = (perf ratio)/(power ratio) pins the uncapped draw:
//     D = g * cap / (1 - slowdown).
//   - The efficiency optimum d/dx[x^alpha / power(x)] = 0 combined with
//     power(x*) = cap collapses to sigma = c (beta-alpha)/beta with
//     c = cap/D.
//   - The slowdown fixes x* = (1-s)^(1/alpha); requiring consistency with
//     x*^beta = (c - sigma)/(1 - sigma) leaves one equation in alpha,
//     solved by bisection (the residual is negative as alpha -> 0+ and
//     positive at alpha = beta, with a single crossing).
func Calibrate(t CalibrationTarget) (Curve, error) {
	if t.Beta == 0 {
		t.Beta = 3
	}
	if t.XMin == 0 {
		t.XMin = 0.15
	}
	switch {
	case t.TDP <= 0:
		return Curve{}, fmt.Errorf("gpu: calibrate: TDP %v must be positive", t.TDP)
	case t.BestCapFrac <= 0 || t.BestCapFrac >= 1:
		return Curve{}, fmt.Errorf("gpu: calibrate: best cap fraction %v must be in (0,1)", t.BestCapFrac)
	case t.Gain <= 0:
		return Curve{}, fmt.Errorf("gpu: calibrate: gain %v must be positive", t.Gain)
	case t.Slowdown <= 0 || t.Slowdown >= 1:
		return Curve{}, fmt.Errorf("gpu: calibrate: slowdown %v must be in (0,1)", t.Slowdown)
	case t.PeakRate <= 0:
		return Curve{}, fmt.Errorf("gpu: calibrate: peak rate %v must be positive", t.PeakRate)
	}
	cap := float64(t.TDP) * t.BestCapFrac
	g := 1 + t.Gain
	s := t.Slowdown
	draw := g * cap / (1 - s)
	if draw > float64(t.TDP) {
		return Curve{}, fmt.Errorf("gpu: calibrate: implied draw %.1f W exceeds TDP %v (gain %.3f and slowdown %.3f are inconsistent)",
			draw, t.TDP, t.Gain, t.Slowdown)
	}
	c := cap / draw // = (1-s)/g, < 1 whenever the cap buys efficiency
	beta := t.Beta
	sigmaOf := func(alpha float64) float64 { return c * (beta - alpha) / beta }
	residual := func(alpha float64) float64 {
		sigma := sigmaOf(alpha)
		lhs := math.Pow(1-s, beta/alpha) // x*^beta from the slowdown
		rhs := (c - sigma) / (1 - sigma) // x*^beta from the cap + optimality
		return lhs - rhs
	}
	lo, hi := 1e-3, beta-1e-9
	if residual(lo) > 0 || residual(hi) < 0 {
		return Curve{}, fmt.Errorf("gpu: calibrate: no feasible alpha for target %+v", t)
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if residual(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	alpha := (lo + hi) / 2
	curve := Curve{
		PeakRate: t.PeakRate,
		Draw:     units.Watts(draw),
		Sigma:    sigmaOf(alpha),
		Alpha:    alpha,
		Beta:     beta,
		XMin:     t.XMin,
	}
	if err := curve.Validate(); err != nil {
		return Curve{}, fmt.Errorf("gpu: calibrate: fitted curve invalid: %w", err)
	}
	return curve, nil
}

// MustCalibrate is Calibrate that panics on error, for the built-in
// architecture tables whose targets are fixed at compile time.
func MustCalibrate(t CalibrationTarget) Curve {
	c, err := Calibrate(t)
	if err != nil {
		panic(err)
	}
	return c
}

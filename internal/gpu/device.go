package gpu

import (
	"fmt"
	"sync"

	"repro/internal/prec"
	"repro/internal/units"
)

// Device is one GPU board: an architecture plus mutable power-management
// state.  It is safe for concurrent use (the NVML facade may be driven
// from several goroutines).
type Device struct {
	arch  *Arch
	index int

	mu  sync.Mutex
	cap units.Watts // 0 = uncapped
}

// NewDevice returns board #index of the given architecture, uncapped.
func NewDevice(arch *Arch, index int) *Device {
	return &Device{arch: arch, index: index}
}

// Arch reports the device's architecture.
func (d *Device) Arch() *Arch { return d.arch }

// Index reports the board index within its node.
func (d *Device) Index() int { return d.index }

// Name reports "<arch> #<index>".
func (d *Device) Name() string { return fmt.Sprintf("%s #%d", d.arch.Name, d.index) }

// SetPowerLimit applies a static power cap.  A zero cap restores the
// default limit (TDP).  Caps outside the driver window are rejected,
// matching nvidia-smi behaviour.
func (d *Device) SetPowerLimit(cap units.Watts) error {
	if err := d.arch.ValidateCap(cap); err != nil {
		return err
	}
	d.mu.Lock()
	d.cap = cap
	d.mu.Unlock()
	return nil
}

// PowerLimit reports the active limit (TDP when uncapped).
func (d *Device) PowerLimit() units.Watts {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cap == 0 {
		return d.arch.TDP
	}
	return d.cap
}

// Uncapped reports whether the default limit is active.
func (d *Device) Uncapped() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cap == 0 || d.cap == d.arch.TDP
}

// IdlePower reports the draw with no kernel resident.
func (d *Device) IdlePower() units.Watts { return d.arch.IdlePower }

// Operate resolves the DVFS operating point for a kernel of the given
// precision and work under the current cap.  efficiencyFactor (in (0,1])
// derates the GEMM curve for kernels with a lower fraction of peak
// (TRSM, SYRK, panel factorisations).
func (d *Device) Operate(p prec.Precision, work units.Flops, efficiencyFactor float64) OperatingPoint {
	curve := d.arch.Curve(p)
	occ := d.arch.Occupancy(work)
	op := curve.Operate(d.PowerLimit(), occ)
	if efficiencyFactor > 0 && efficiencyFactor < 1 {
		op.Rate = units.FlopsPerSec(float64(op.Rate) * efficiencyFactor)
	}
	return op
}

// KernelTime reports the duration of one kernel launch (including the
// fixed launch overhead) at the current operating point.
func (d *Device) KernelTime(p prec.Precision, work units.Flops, efficiencyFactor float64) (units.Seconds, OperatingPoint) {
	op := d.Operate(p, work, efficiencyFactor)
	return d.arch.LaunchOverhead + units.DurationFor(work, op.Rate), op
}

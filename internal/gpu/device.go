package gpu

import (
	"fmt"
	"sync"

	"repro/internal/prec"
	"repro/internal/units"
)

// Device is one GPU board: an architecture plus mutable power-management
// state.  It is safe for concurrent use (the NVML facade may be driven
// from several goroutines).
type Device struct {
	arch  *Arch
	index int

	mu       sync.Mutex
	cap      units.Watts // 0 = uncapped
	throttle units.Watts // 0 = no thermal throttle active
	dead     bool        // board fell off the bus
}

// NewDevice returns board #index of the given architecture, uncapped.
func NewDevice(arch *Arch, index int) *Device {
	return &Device{arch: arch, index: index}
}

// Arch reports the device's architecture.
func (d *Device) Arch() *Arch { return d.arch }

// Index reports the board index within its node.
func (d *Device) Index() int { return d.index }

// Name reports "<arch> #<index>".
func (d *Device) Name() string { return fmt.Sprintf("%s #%d", d.arch.Name, d.index) }

// SetPowerLimit applies a static power cap.  A zero cap restores the
// default limit (TDP).  Caps outside the driver window are rejected,
// matching nvidia-smi behaviour.
func (d *Device) SetPowerLimit(cap units.Watts) error {
	if err := d.arch.ValidateCap(cap); err != nil {
		return err
	}
	d.mu.Lock()
	d.cap = cap
	d.mu.Unlock()
	return nil
}

// PowerLimit reports the effective limit: the configured cap (TDP when
// uncapped), further reduced by an active thermal-throttle window.  The
// effective limit is what the DVFS curves, the power draw and the
// worker-class strings all key off, so a throttle window degrades the
// device's power class exactly like a (temporary) deeper cap.
func (d *Device) PowerLimit() units.Watts {
	d.mu.Lock()
	defer d.mu.Unlock()
	limit := d.cap
	if limit == 0 {
		limit = d.arch.TDP
	}
	if d.throttle > 0 && d.throttle < limit {
		limit = d.throttle
	}
	return limit
}

// ConfiguredLimit reports the cap as set through the driver, ignoring
// any thermal throttle (what GetEnforcedPowerLimit verifies against).
func (d *Device) ConfiguredLimit() units.Watts {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cap == 0 {
		return d.arch.TDP
	}
	return d.cap
}

// SetThrottle starts a thermal-throttle window: the effective limit
// drops to min(cap, limit) until ClearThrottle.  Values at or below zero
// clamp to the driver minimum (the board never throttles below it).
func (d *Device) SetThrottle(limit units.Watts) {
	if limit < d.arch.MinPower {
		limit = d.arch.MinPower
	}
	d.mu.Lock()
	d.throttle = limit
	d.mu.Unlock()
}

// ClearThrottle ends the thermal-throttle window.
func (d *Device) ClearThrottle() {
	d.mu.Lock()
	d.throttle = 0
	d.mu.Unlock()
}

// Throttled reports whether a thermal window is currently active.
func (d *Device) Throttled() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.throttle > 0
}

// MarkDead drops the board off the bus: capping calls fail with
// ERROR_NOT_FOUND from then on.  Irreversible, like the real failure.
func (d *Device) MarkDead() {
	d.mu.Lock()
	d.dead = true
	d.mu.Unlock()
}

// Alive reports whether the board still answers.
func (d *Device) Alive() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return !d.dead
}

// Uncapped reports whether the default limit is active.
func (d *Device) Uncapped() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cap == 0 || d.cap == d.arch.TDP
}

// IdlePower reports the draw with no kernel resident.
func (d *Device) IdlePower() units.Watts { return d.arch.IdlePower }

// Operate resolves the DVFS operating point for a kernel of the given
// precision and work under the current cap.  efficiencyFactor (in (0,1])
// derates the GEMM curve for kernels with a lower fraction of peak
// (TRSM, SYRK, panel factorisations).
func (d *Device) Operate(p prec.Precision, work units.Flops, efficiencyFactor float64) OperatingPoint {
	curve := d.arch.Curve(p)
	occ := d.arch.Occupancy(work)
	op := curve.Operate(d.PowerLimit(), occ)
	if efficiencyFactor > 0 && efficiencyFactor < 1 {
		op.Rate = units.FlopsPerSec(float64(op.Rate) * efficiencyFactor)
	}
	return op
}

// KernelTime reports the duration of one kernel launch (including the
// fixed launch overhead) at the current operating point.
func (d *Device) KernelTime(p prec.Precision, work units.Flops, efficiencyFactor float64) (units.Seconds, OperatingPoint) {
	op := d.Operate(p, work, efficiencyFactor)
	return d.arch.LaunchOverhead + units.DurationFor(work, op.Rate), op
}

// Package units defines the physical quantities used throughout the
// simulator: power in watts, energy in joules, work in floating-point
// operations, data in bytes and simulated durations in seconds.
//
// All quantities are float64 wrappers.  Keeping them as distinct named
// types catches unit mix-ups at compile time (a Watts value cannot be
// passed where Joules is expected) while staying allocation-free.
package units

import (
	"fmt"
	"math"
	"time"
)

// Watts is instantaneous power.
type Watts float64

// Joules is energy.
type Joules float64

// Flops is an amount of floating-point work (operations, not a rate).
type Flops float64

// FlopsPerSec is a computation rate.
type FlopsPerSec float64

// Bytes is a data volume.
type Bytes float64

// BytesPerSec is a transfer rate.
type BytesPerSec float64

// Seconds is a simulated duration or timestamp.
type Seconds float64

// Hertz is a clock frequency.
type Hertz float64

// Common scale factors.
const (
	Kilo = 1e3
	Mega = 1e6
	Giga = 1e9
	Tera = 1e12
)

// GFlopsPerSec converts a raw gigaflop/s figure to a FlopsPerSec value.
func GFlopsPerSec(g float64) FlopsPerSec { return FlopsPerSec(g * Giga) }

// GBytesPerSec converts a raw GB/s figure to a BytesPerSec value.
func GBytesPerSec(g float64) BytesPerSec { return BytesPerSec(g * Giga) }

// Energy accumulated over dt at power p.
func Energy(p Watts, dt Seconds) Joules { return Joules(float64(p) * float64(dt)) }

// Power is the average power that spends e within dt. It reports 0 for
// non-positive durations.
func Power(e Joules, dt Seconds) Watts {
	if dt <= 0 {
		return 0
	}
	return Watts(float64(e) / float64(dt))
}

// Rate is the throughput achieving work within dt. It reports 0 for
// non-positive durations.
func Rate(work Flops, dt Seconds) FlopsPerSec {
	if dt <= 0 {
		return 0
	}
	return FlopsPerSec(float64(work) / float64(dt))
}

// DurationFor reports the time needed to process work at rate r.
// It reports +Inf when the rate is not positive.
func DurationFor(work Flops, r FlopsPerSec) Seconds {
	if r <= 0 {
		return Seconds(math.Inf(1))
	}
	return Seconds(float64(work) / float64(r))
}

// TransferTime reports the time to move v bytes at rate r, +Inf when the
// rate is not positive.
func TransferTime(v Bytes, r BytesPerSec) Seconds {
	if r <= 0 {
		return Seconds(math.Inf(1))
	}
	return Seconds(float64(v) / float64(r))
}

// Efficiency is the flop/s/W figure of merit used throughout the paper.
// It reports 0 when power is not positive.
func Efficiency(r FlopsPerSec, p Watts) float64 {
	if p <= 0 {
		return 0
	}
	return float64(r) / float64(p)
}

// GFlopsPerWatt expresses r/p in Gflop/s/Watt, the unit of the paper's
// efficiency plots.
func GFlopsPerWatt(r FlopsPerSec, p Watts) float64 {
	return Efficiency(r, p) / Giga
}

// Duration converts a simulated duration to a time.Duration (useful for
// human-readable printing; precision is capped at nanoseconds).
func (s Seconds) Duration() time.Duration {
	return time.Duration(float64(s) * float64(time.Second))
}

// String implementations for readable logs and reports.

func (w Watts) String() string       { return fmt.Sprintf("%.1f W", float64(w)) }
func (j Joules) String() string      { return fmt.Sprintf("%.1f J", float64(j)) }
func (s Seconds) String() string     { return fmt.Sprintf("%.4f s", float64(s)) }
func (h Hertz) String() string       { return fmt.Sprintf("%.0f MHz", float64(h)/Mega) }
func (f Flops) String() string       { return fmt.Sprintf("%.3g flop", float64(f)) }
func (r FlopsPerSec) String() string { return fmt.Sprintf("%.2f Gflop/s", float64(r)/Giga) }
func (b Bytes) String() string {
	switch {
	case float64(b) >= Giga:
		return fmt.Sprintf("%.2f GB", float64(b)/Giga)
	case float64(b) >= Mega:
		return fmt.Sprintf("%.2f MB", float64(b)/Mega)
	case float64(b) >= Kilo:
		return fmt.Sprintf("%.2f KB", float64(b)/Kilo)
	}
	return fmt.Sprintf("%.0f B", float64(b))
}

// PercentChange reports the relative change from base to v in percent.
// Positive means v is larger. It reports 0 for a zero base.
func PercentChange(base, v float64) float64 {
	if base == 0 {
		return 0
	}
	return (v - base) / base * 100
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestEnergyPowerRoundTrip(t *testing.T) {
	f := func(p float64, dt float64) bool {
		p = math.Abs(p)
		dt = math.Abs(dt)
		if math.IsNaN(p) || math.IsInf(p, 0) || math.IsNaN(dt) || math.IsInf(dt, 0) {
			return true
		}
		if p > 1e150 || dt > 1e150 { // avoid float64 overflow in the product
			return true
		}
		if dt == 0 {
			return Power(Energy(Watts(p), Seconds(dt)), Seconds(dt)) == 0
		}
		e := Energy(Watts(p), Seconds(dt))
		back := Power(e, Seconds(dt))
		return approx(float64(back), p, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRateDurationRoundTrip(t *testing.T) {
	f := func(work, rate float64) bool {
		work = math.Abs(work)
		rate = math.Abs(rate)
		if !finite(work) || !finite(rate) {
			return true
		}
		if rate == 0 {
			return math.IsInf(float64(DurationFor(Flops(work), FlopsPerSec(rate))), 1)
		}
		dt := DurationFor(Flops(work), FlopsPerSec(rate))
		back := Rate(Flops(work), dt)
		if work == 0 {
			return float64(back) == 0 || float64(dt) == 0
		}
		return approx(float64(back), rate, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEfficiency(t *testing.T) {
	if got := Efficiency(FlopsPerSec(100), Watts(0)); got != 0 {
		t.Errorf("Efficiency with zero power = %v, want 0", got)
	}
	if got := Efficiency(GFlopsPerSec(19500), Watts(400)); !approx(got, 19500e9/400, 1e-12) {
		t.Errorf("Efficiency = %v", got)
	}
	if got := GFlopsPerWatt(GFlopsPerSec(19500), Watts(400)); !approx(got, 48.75, 1e-9) {
		t.Errorf("GFlopsPerWatt = %v, want 48.75", got)
	}
}

func TestTransferTime(t *testing.T) {
	dt := TransferTime(Bytes(16*Giga), GBytesPerSec(16))
	if !approx(float64(dt), 1.0, 1e-12) {
		t.Errorf("TransferTime = %v, want 1 s", dt)
	}
	if !math.IsInf(float64(TransferTime(Bytes(1), 0)), 1) {
		t.Error("TransferTime with zero bandwidth should be +Inf")
	}
}

func TestPercentChange(t *testing.T) {
	cases := []struct {
		base, v, want float64
	}{
		{100, 110, 10},
		{100, 90, -10},
		{0, 50, 0},
		{200, 200, 0},
	}
	for _, c := range cases {
		if got := PercentChange(c.base, c.v); !approx(got, c.want, 1e-12) {
			t.Errorf("PercentChange(%v,%v) = %v, want %v", c.base, c.v, got, c.want)
		}
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 1); got != 1 {
		t.Errorf("Clamp above = %v", got)
	}
	if got := Clamp(-5, 0, 1); got != 0 {
		t.Errorf("Clamp below = %v", got)
	}
	if got := Clamp(0.5, 0, 1); got != 0.5 {
		t.Errorf("Clamp inside = %v", got)
	}
}

func TestStringFormats(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{Watts(250).String(), "250.0 W"},
		{Joules(1234.56).String(), "1234.6 J"},
		{Hertz(1410 * Mega).String(), "1410 MHz"},
		{Bytes(2 * Giga).String(), "2.00 GB"},
		{Bytes(3 * Mega).String(), "3.00 MB"},
		{Bytes(4 * Kilo).String(), "4.00 KB"},
		{Bytes(12).String(), "12 B"},
		{GFlopsPerSec(19.5).String(), "19.50 Gflop/s"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q, want %q", c.got, c.want)
		}
	}
}

func approx(a, b, tol float64) bool {
	if a == b {
		return true
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return true
	}
	return math.Abs(a-b)/den < tol
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func TestDurationConversion(t *testing.T) {
	if got := Seconds(1.5).Duration(); got != 1500*time.Millisecond {
		t.Errorf("Duration = %v, want 1.5s", got)
	}
	if got := Seconds(0).Duration(); got != 0 {
		t.Errorf("zero Duration = %v", got)
	}
}

func TestScaleHelpers(t *testing.T) {
	if float64(GFlopsPerSec(2)) != 2e9 {
		t.Error("GFlopsPerSec")
	}
	if float64(GBytesPerSec(3)) != 3e9 {
		t.Error("GBytesPerSec")
	}
}

package cpu

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/prec"
	"repro/internal/units"
)

func TestArchsValid(t *testing.T) {
	for _, name := range []string{XeonGold6126Name, EPYC7452Name, EPYC7513Name} {
		a, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		// Full-package power must not exceed TDP by much (RAPL enforces).
		full := float64(a.UncorePower) + float64(a.Cores)*float64(a.CorePower)
		if full > float64(a.TDP)*1.05 {
			t.Errorf("%s: all-core power %.1f W far exceeds TDP %v", name, full, a.TDP)
		}
		if full < float64(a.TDP)*0.7 {
			t.Errorf("%s: all-core power %.1f W implausibly below TDP %v", name, full, a.TDP)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("Itanium"); err == nil {
		t.Error("unknown CPU accepted")
	}
}

func TestPowerLimitWindow(t *testing.T) {
	p := NewPackage(XeonGold6126(), 1)
	if got := p.PowerLimit(); got != 125 {
		t.Errorf("default limit = %v, want 125 W", got)
	}
	// The paper caps the second CPU at 48 % of TDP = 60 W.
	if err := p.SetPowerLimit(60); err != nil {
		t.Fatalf("SetPowerLimit(60): %v", err)
	}
	if p.Uncapped() {
		t.Error("capped package reported uncapped")
	}
	// Below the 48 % stability floor must be rejected.
	if err := p.SetPowerLimit(50); err == nil {
		t.Error("cap below stability floor accepted")
	}
	if err := p.SetPowerLimit(200); err == nil {
		t.Error("cap above TDP accepted")
	}
	if err := p.SetPowerLimit(0); err != nil {
		t.Errorf("reset: %v", err)
	}
	if !p.Uncapped() {
		t.Error("reset package should be uncapped")
	}
}

func TestCapSlowsClock(t *testing.T) {
	p := NewPackage(XeonGold6126(), 0)
	if x := p.ClockFraction(); x != 1 {
		t.Errorf("uncapped clock fraction = %v, want 1", x)
	}
	fullRate := p.CoreRate(prec.Double)
	if err := p.SetPowerLimit(60); err != nil {
		t.Fatal(err)
	}
	x := p.ClockFraction()
	if !(x > 0.25 && x < 1) {
		t.Errorf("capped clock fraction = %v, want in (0.25, 1)", x)
	}
	capped := p.CoreRate(prec.Double)
	if capped >= fullRate {
		t.Errorf("capped rate %v not below full rate %v", capped, fullRate)
	}
	// Perf loss should be moderate (sub-proportional to the 52 % power cut).
	loss := 1 - float64(capped)/float64(fullRate)
	if loss < 0.05 || loss > 0.52 {
		t.Errorf("perf loss at 48%% cap = %.2f, want moderate", loss)
	}
}

func TestPackagePowerUnderCap(t *testing.T) {
	// Property: package power with all cores busy never exceeds the cap
	// (when a cap is set and above the uncore floor).
	f := func(rawCap uint8) bool {
		p := NewPackage(XeonGold6126(), 0)
		cap := units.Watts(60 + float64(rawCap%66)) // 60..125 W
		if err := p.SetPowerLimit(cap); err != nil {
			return true
		}
		got := p.PackagePower(p.Arch().Cores)
		return float64(got) <= float64(cap)*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPackagePowerMonotonicInBusyCores(t *testing.T) {
	p := NewPackage(EPYC7513(), 0)
	prev := units.Watts(0)
	for n := 0; n <= p.Arch().Cores; n++ {
		got := p.PackagePower(n)
		if got < prev {
			t.Fatalf("power decreased at %d busy cores", n)
		}
		prev = got
	}
	if p.PackagePower(-3) != p.IdlePower() {
		t.Error("negative busy count should clamp to idle")
	}
	if p.PackagePower(1000) != p.PackagePower(p.Arch().Cores) {
		t.Error("busy count above core count should clamp")
	}
}

func TestKernelTime(t *testing.T) {
	p := NewPackage(EPYC7513(), 0)
	// One 2880-tile dgemm: 2*2880^3 = 4.78e10 flops at 29 Gflop/s ~ 1.65 s.
	dt := p.KernelTime(prec.Double, 4.78e10, 1)
	if float64(dt) < 1.0 || float64(dt) > 3.0 {
		t.Errorf("2880-tile CPU dgemm = %v, want ~1.65 s", dt)
	}
	if h := p.KernelTime(prec.Single, 4.78e10, 1); h >= dt {
		t.Errorf("single precision not faster: %v >= %v", h, dt)
	}
	derated := p.KernelTime(prec.Double, 4.78e10, 0.5)
	if derated <= dt {
		t.Error("efficiency factor did not slow the kernel")
	}
}

func TestGPUToCPURatio(t *testing.T) {
	// §III-C: GEMM ~20x faster on a GPU than on the CPUs.  Check the
	// 32-AMD-4-A100 platform: one A100-SXM4 vs one EPYC 7513 socket.
	pkg := NewPackage(EPYC7513(), 0)
	cpuAll := float64(pkg.CoreRate(prec.Double)) * float64(pkg.Arch().Cores)
	gpuRate := 17.8e12 // A100-SXM4 sustained dgemm
	ratio := gpuRate / cpuAll
	if ratio < 10 || ratio > 40 {
		t.Errorf("GPU/CPU GEMM ratio = %.1f, want ~20", ratio)
	}
}

func TestClockFractionMonotonicInCap(t *testing.T) {
	p := NewPackage(XeonGold6126(), 0)
	prev := 0.0
	for cap := 60.0; cap <= 125; cap += 5 {
		if err := p.SetPowerLimit(units.Watts(cap)); err != nil {
			t.Fatal(err)
		}
		x := p.ClockFraction()
		if x < prev-1e-12 {
			t.Fatalf("clock fraction decreased as cap rose to %v", cap)
		}
		prev = x
	}
	if math.Abs(prev-1) > 0.2 {
		t.Errorf("clock fraction at TDP = %v, want near 1", prev)
	}
}

// Package cpu models multicore CPU packages under RAPL-style power
// capping: per-core kernel throughput, package power as a function of
// busy cores, and the frequency throttling a package cap induces.
//
// The model is deliberately simpler than the GPU one — the paper only
// caps one CPU (at 48 % of TDP on the Intel platform) and otherwise uses
// the CPUs as slower, less energy-efficient workers whose Joules dilute
// the GPU savings (§V-C).
package cpu

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/prec"
	"repro/internal/units"
)

// Arch describes one CPU package (one socket).
type Arch struct {
	// Name is the marketing name ("Xeon Gold 6126").
	Name string
	// Cores is the core count per socket.
	Cores int
	// BaseClock is the all-core sustained clock.
	BaseClock units.Hertz
	// TDP is the package power limit (the default RAPL cap).
	TDP units.Watts
	// UncorePower is the package draw with all cores idle.
	UncorePower units.Watts
	// CorePower is the extra draw of one busy core at full clock.
	CorePower units.Watts
	// CoreRate maps precision to one core's sustained GEMM throughput at
	// full clock (MKL-class blocked kernels).
	CoreRate map[prec.Precision]units.FlopsPerSec
	// TaskOverhead is the fixed per-task runtime cost on a CPU worker.
	TaskOverhead units.Seconds
	// MinCapFrac is the lowest stable cap as a fraction of TDP; the paper
	// reports instability below 48 % on the Xeon 6126.
	MinCapFrac float64
}

// Beta is the dynamic-power exponent for core power vs clock.
const beta = 3

// alphaCPU is the perf-vs-clock exponent; CPU GEMM is compute bound, so
// performance tracks frequency almost linearly.
const alphaCPU = 0.95

// Validate reports an error for meaningless parameters.
func (a *Arch) Validate() error {
	switch {
	case a.Cores <= 0:
		return fmt.Errorf("cpu: %s: cores %d must be positive", a.Name, a.Cores)
	case a.TDP <= 0:
		return fmt.Errorf("cpu: %s: TDP %v must be positive", a.Name, a.TDP)
	case a.UncorePower <= 0 || a.UncorePower >= a.TDP:
		return fmt.Errorf("cpu: %s: uncore power %v must be in (0, TDP)", a.Name, a.UncorePower)
	case a.CorePower <= 0:
		return fmt.Errorf("cpu: %s: core power %v must be positive", a.Name, a.CorePower)
	case len(a.CoreRate) == 0:
		return fmt.Errorf("cpu: %s: no core rates", a.Name)
	}
	return nil
}

// Package is one socket with mutable RAPL state.  Safe for concurrent use.
type Package struct {
	arch  *Arch
	index int

	mu  sync.Mutex
	cap units.Watts // 0 = uncapped
}

// NewPackage returns socket #index of the given architecture, uncapped.
func NewPackage(arch *Arch, index int) *Package {
	return &Package{arch: arch, index: index}
}

// Arch reports the package's architecture.
func (p *Package) Arch() *Arch { return p.arch }

// Index reports the socket number.
func (p *Package) Index() int { return p.index }

// Name reports "<arch> pkg<index>".
func (p *Package) Name() string { return fmt.Sprintf("%s pkg%d", p.arch.Name, p.index) }

// SetPowerLimit applies a RAPL package cap; zero restores the default.
// Caps below the stability floor are rejected (the paper observed
// instability under 48 % of TDP).
func (p *Package) SetPowerLimit(cap units.Watts) error {
	if cap != 0 {
		min := units.Watts(float64(p.arch.TDP) * p.arch.MinCapFrac)
		if cap < min || cap > p.arch.TDP {
			return fmt.Errorf("cpu: %s: power limit %v outside [%v, %v]", p.arch.Name, cap, min, p.arch.TDP)
		}
	}
	p.mu.Lock()
	p.cap = cap
	p.mu.Unlock()
	return nil
}

// PowerLimit reports the active cap (TDP when uncapped).
func (p *Package) PowerLimit() units.Watts {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cap == 0 {
		return p.arch.TDP
	}
	return p.cap
}

// Uncapped reports whether the default limit is active.
func (p *Package) Uncapped() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cap == 0 || p.cap == p.arch.TDP
}

// ClockFraction reports the all-core clock fraction the cap allows,
// sized for the worst case of every core busy (RAPL enforces the limit
// regardless of instantaneous occupancy, and HPC runs keep cores busy).
func (p *Package) ClockFraction() float64 {
	cap := p.PowerLimit()
	full := p.arch.UncorePower + units.Watts(float64(p.arch.Cores)*float64(p.arch.CorePower))
	if cap >= full {
		return 1
	}
	budget := float64(cap - p.arch.UncorePower)
	if budget <= 0 {
		return 0.25 // hardware floor: RAPL cannot gate the uncore
	}
	x := math.Pow(budget/(float64(p.arch.Cores)*float64(p.arch.CorePower)), 1.0/beta)
	return units.Clamp(x, 0.25, 1)
}

// CoreRate reports one busy core's throughput under the current cap.
func (p *Package) CoreRate(pr prec.Precision) units.FlopsPerSec {
	base := p.arch.CoreRate[pr]
	x := p.ClockFraction()
	return units.FlopsPerSec(float64(base) * math.Pow(x, alphaCPU))
}

// KernelTime reports the duration of a kernel of the given work on one
// core, including the fixed task overhead.  efficiencyFactor derates the
// GEMM rate for less regular kernels.
func (p *Package) KernelTime(pr prec.Precision, work units.Flops, efficiencyFactor float64) units.Seconds {
	rate := p.CoreRate(pr)
	if efficiencyFactor > 0 && efficiencyFactor < 1 {
		rate = units.FlopsPerSec(float64(rate) * efficiencyFactor)
	}
	return p.arch.TaskOverhead + units.DurationFor(work, rate)
}

// IdlePower reports the package draw with all cores idle.
func (p *Package) IdlePower() units.Watts { return p.arch.UncorePower }

// BusyCorePower reports the incremental draw of one busy core under the
// current cap.
func (p *Package) BusyCorePower() units.Watts {
	x := p.ClockFraction()
	return units.Watts(float64(p.arch.CorePower) * math.Pow(x, beta))
}

// PackagePower reports total package power with n busy cores.
func (p *Package) PackagePower(nBusy int) units.Watts {
	if nBusy < 0 {
		nBusy = 0
	}
	if nBusy > p.arch.Cores {
		nBusy = p.arch.Cores
	}
	return p.arch.UncorePower + units.Watts(float64(nBusy)*float64(p.BusyCorePower()))
}

// The paper's three CPU models (§IV-A).  Core GEMM rates are set so a
// platform's full CPU complement is roughly 1/20 of one of its GPUs
// (§III-C: "the GEMM kernel is approximately 20 times faster on GPUs
// than on CPUs").
var (
	archOnce sync.Once
	archs    map[string]*Arch
)

// Architecture names.
const (
	XeonGold6126Name = "Xeon Gold 6126"
	EPYC7452Name     = "EPYC 7452"
	EPYC7513Name     = "EPYC 7513"
)

func buildArchs() {
	archs = map[string]*Arch{
		// Skylake-SP, 12 cores @ 2.60 GHz, two AVX-512 FMA units
		// (MKL DGEMM sustains ~55 Gflop/s/core at all-core AVX clocks).
		XeonGold6126Name: {
			Name:        XeonGold6126Name,
			Cores:       12,
			BaseClock:   units.Hertz(2600 * units.Mega),
			TDP:         125,
			UncorePower: 28,
			CorePower:   8.0,
			CoreRate: map[prec.Precision]units.FlopsPerSec{
				prec.Double: units.GFlopsPerSec(70),
				prec.Single: units.GFlopsPerSec(140),
			},
			TaskOverhead: 4e-6,
			MinCapFrac:   0.48,
		},
		// Zen2, 32 cores @ 2.35 GHz, AVX2.  The paper quotes a 125 W TDP
		// for this platform's sockets; we follow the paper.  The Zen IO
		// die keeps package idle power high.
		EPYC7452Name: {
			Name:        EPYC7452Name,
			Cores:       32,
			BaseClock:   units.Hertz(2350 * units.Mega),
			TDP:         125,
			UncorePower: 62,
			CorePower:   1.9,
			CoreRate: map[prec.Precision]units.FlopsPerSec{
				prec.Double: units.GFlopsPerSec(30),
				prec.Single: units.GFlopsPerSec(60),
			},
			TaskOverhead: 4e-6,
			MinCapFrac:   0.48,
		},
		// Zen3, 32 cores @ 2.60 GHz, AVX2, large IO die.
		EPYC7513Name: {
			Name:        EPYC7513Name,
			Cores:       32,
			BaseClock:   units.Hertz(2600 * units.Mega),
			TDP:         200,
			UncorePower: 68,
			CorePower:   4.1,
			CoreRate: map[prec.Precision]units.FlopsPerSec{
				prec.Double: units.GFlopsPerSec(33),
				prec.Single: units.GFlopsPerSec(66),
			},
			TaskOverhead: 4e-6,
			MinCapFrac:   0.48,
		},
	}
}

// Lookup returns the named CPU architecture.
func Lookup(name string) (*Arch, error) {
	archOnce.Do(buildArchs)
	a, ok := archs[name]
	if !ok {
		return nil, fmt.Errorf("cpu: unknown architecture %q (known: %s, %s, %s)",
			name, XeonGold6126Name, EPYC7452Name, EPYC7513Name)
	}
	return a, nil
}

// XeonGold6126 returns the Skylake-SP socket of platform 24-Intel-2-V100.
func XeonGold6126() *Arch { return mustLookup(XeonGold6126Name) }

// EPYC7452 returns the Zen2 socket of platform 64-AMD-2-A100.
func EPYC7452() *Arch { return mustLookup(EPYC7452Name) }

// EPYC7513 returns the Zen3 socket of platform 32-AMD-4-A100.
func EPYC7513() *Arch { return mustLookup(EPYC7513Name) }

func mustLookup(name string) *Arch {
	a, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return a
}

package dyncap

import (
	"testing"

	"repro/internal/platform"
	"repro/internal/prec"
	"repro/internal/starpu"
	"repro/internal/units"
)

func TestConfigValidation(t *testing.T) {
	p, err := platform.New(platform.FourA100Spec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(p, Config{Interval: 0, InitialStep: 10, MinStep: 1}); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := New(p, Config{Interval: 1, InitialStep: 0, MinStep: 1}); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := New(p, DefaultConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestControllerStartsAtDefault(t *testing.T) {
	p, err := New2GPU(t)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, cap := range c.Caps() {
		if cap != p.GPUArch.TDP {
			t.Errorf("GPU %d initial cap = %v, want TDP", i, cap)
		}
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	// Caps actually applied through NVML.
	h, _ := p.NVML.DeviceGetHandleByIndex(0)
	lim, _ := h.GetPowerManagementLimit()
	if lim != uint32(float64(p.GPUArch.TDP)*1000) {
		t.Errorf("applied limit = %d mW", lim)
	}
}

func TestControllerStopsWhenDone(t *testing.T) {
	p, err := New2GPU(t)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(p, Config{Interval: 0.1, InitialStep: 16, MinStep: 4})
	if err != nil {
		t.Fatal(err)
	}
	done := false
	c.Done = func() bool { return done }
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	// Let a few ticks fire, then flip Done; the engine must drain.
	p.Engine().At(0.35, func() { done = true })
	p.Engine().Run()
	if c.Ticks() != 3 {
		t.Errorf("ticks = %d, want 3 (0.1, 0.2, 0.3)", c.Ticks())
	}
}

func TestControllerHoldsWithoutSignal(t *testing.T) {
	// With no GPU work at all, caps must not move (no dJ/dW signal).
	p, err := New2GPU(t)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(p, Config{Interval: 0.1, InitialStep: 16, MinStep: 4})
	if err != nil {
		t.Fatal(err)
	}
	ticks := 0
	c.Done = func() bool { ticks++; return ticks > 5 }
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	p.Engine().Run()
	for i, cap := range c.Caps() {
		if cap != p.GPUArch.TDP {
			t.Errorf("GPU %d cap moved to %v with no load", i, cap)
		}
	}
}

func TestCapsStayInDriverWindow(t *testing.T) {
	p, err := New2GPU(t)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(p, Config{Interval: 0.1, InitialStep: 500, MinStep: 4, StartCap: p.GPUArch.TDP})
	if err != nil {
		t.Fatal(err)
	}
	// Feed the controller synthetic "always better" signals by running
	// fake work: directly exercise tick clamping through Start + load.
	task := fakeTask()
	eng := p.Engine()
	for i := 0; i < 8; i++ {
		at := units.Seconds(float64(i) * 0.1)
		eng.At(at, func() { p.OnTaskStart(0, task) })
		eng.At(at+0.05, func() { p.OnTaskEnd(0, task) })
	}
	n := 0
	c.Done = func() bool { n++; return n > 8 }
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	for i, cap := range c.Caps() {
		if cap < p.GPUArch.MinPower || cap > p.GPUArch.TDP {
			t.Errorf("GPU %d cap %v outside driver window", i, cap)
		}
	}
}

func TestHistoryRecordsCapMoves(t *testing.T) {
	p, err := New2GPU(t)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(p, Config{Interval: 0.1, InitialStep: 32, MinStep: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Keep GPU 0 busy so the controller has an efficiency signal to act on.
	task := fakeTask()
	eng := p.Engine()
	for i := 0; i < 10; i++ {
		at := units.Seconds(float64(i) * 0.1)
		eng.At(at, func() { p.OnTaskStart(0, task) })
		eng.At(at+0.08, func() { p.OnTaskEnd(0, task) })
	}
	var callbacks []CapChange
	c.OnCapChange = func(ch CapChange) { callbacks = append(callbacks, ch) }
	n := 0
	c.Done = func() bool { n++; return n > 10 }
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	eng.Run()

	hist := c.History()
	if len(hist) == 0 {
		t.Fatal("no cap moves recorded despite steady GPU load")
	}
	if len(callbacks) != len(hist) {
		t.Errorf("OnCapChange fired %d times, history has %d moves", len(callbacks), len(hist))
	}
	var lastT units.Seconds
	for i, ch := range hist {
		if ch.T < lastT {
			t.Errorf("move %d out of time order: %v after %v", i, ch.T, lastT)
		}
		lastT = ch.T
		if ch.Old == ch.New {
			t.Errorf("move %d records no change (%v)", i, ch.Old)
		}
		if ch.New < p.GPUArch.MinPower || ch.New > p.GPUArch.TDP {
			t.Errorf("move %d cap %v outside driver window", i, ch.New)
		}
	}
	// The final move per GPU must agree with the Caps() snapshot.
	final := map[int]units.Watts{}
	for _, ch := range hist {
		final[ch.GPU] = ch.New
	}
	for gpu, cap := range final {
		if got := c.Caps()[gpu]; got != cap {
			t.Errorf("GPU %d: last history move %v != Caps() %v", gpu, cap, got)
		}
	}
}

// New2GPU builds a small platform for controller tests.
func New2GPU(t *testing.T) (*platform.Platform, error) {
	t.Helper()
	return platform.New(platform.FourA100Spec())
}

// fakeTask is a GEMM-sized task used to exercise the power meters.
func fakeTask() *starpu.Task {
	return &starpu.Task{
		Codelet: &starpu.Codelet{Name: "dgemm", Precision: prec.Double, CanCUDA: true},
		Work:    3.8e11,
	}
}

// Package dyncap implements an online per-GPU power-cap controller — a
// DEPO-style tuner and the paper's stated future work ("consider
// dynamic power capping and its interaction with scheduling
// decisions").
//
// Every control interval the controller reads, per GPU, the energy and
// useful work completed since the last tick, computes the achieved
// flop/J, and hill-climbs the device's cap: keep moving while
// efficiency improves, reverse and shrink the step when it degrades.
// Caps are applied through NVML, so the runtime's performance models
// re-key to the new power classes and the scheduler adapts exactly as
// it does for static caps.
package dyncap

import (
	"errors"
	"fmt"

	"repro/internal/nvml"
	"repro/internal/platform"
	"repro/internal/units"
)

// Config tunes the controller.
type Config struct {
	// Interval is the virtual time between control decisions.
	Interval units.Seconds
	// InitialStep is the first cap adjustment; it halves on every
	// direction reversal, down to MinStep.
	InitialStep units.Watts
	// MinStep stops the search once reached.
	MinStep units.Watts
	// StartCap is the initial cap per GPU (0 = TDP).
	StartCap units.Watts
}

// DefaultConfig is a reasonable controller for GEMM-scale runs: decide
// every half second of virtual time, start with 32 W moves.
func DefaultConfig() Config {
	return Config{Interval: 0.5, InitialStep: 32, MinStep: 4}
}

// gpuState is the per-device hill-climbing state.
type gpuState struct {
	cap      units.Watts
	step     units.Watts
	dir      float64 // -1 capping down, +1 easing up
	lastEff  float64
	lastWork units.Flops
	lastJ    units.Joules
	moves    int
	disabled bool // board fell off the bus; never touched again
}

// CapChange is one recorded controller move: at virtual time T, GPU's
// cap went from Old to New Watts.
type CapChange struct {
	T   units.Seconds
	GPU int
	Old units.Watts
	New units.Watts
}

// Controller drives one platform's GPU caps.
type Controller struct {
	plat *platform.Platform
	cfg  Config
	gpus []gpuState
	// Done tells the controller to stop rescheduling itself; the
	// experiment driver wires it to the runtime's pending-task count.
	Done func() bool
	// OnCapChange, when set, fires once per applied cap move (telemetry).
	OnCapChange func(CapChange)
	// Evict, when set, fires when the platform's cap-write circuit
	// breaker trips on a GPU the controller was driving (the board is
	// already marked dead by then).  It is called from tick — an engine
	// event, not an observer callback — so it may legally call back into
	// the runtime, e.g. to evict the board's worker.
	Evict func(gpu int)

	ticks   int
	skips   int
	clamps  int
	history []CapChange
}

// New builds a controller over the platform's GPUs.
func New(plat *platform.Platform, cfg Config) (*Controller, error) {
	if cfg.Interval <= 0 {
		return nil, fmt.Errorf("dyncap: non-positive interval %v", cfg.Interval)
	}
	if cfg.InitialStep <= 0 || cfg.MinStep <= 0 {
		return nil, fmt.Errorf("dyncap: steps must be positive")
	}
	c := &Controller{plat: plat, cfg: cfg}
	arch := plat.GPUArch
	start := cfg.StartCap
	if start == 0 {
		start = arch.TDP
	}
	for range plat.GPUs() {
		c.gpus = append(c.gpus, gpuState{cap: start, step: cfg.InitialStep, dir: -1})
	}
	return c, nil
}

// Ticks reports how many control decisions have fired.
func (c *Controller) Ticks() int { return c.ticks }

// Skips reports per-GPU decisions abandoned because the cap write
// failed: the controller holds its hill-climbing state and re-decides
// next tick rather than attributing the coming interval to a cap that
// was never applied.
func (c *Controller) Skips() int { return c.skips }

// Clamps reports applied moves whose read-back differed from the
// request (driver clamping/drift); the controller adopts the device's
// actual value as its climbing position.
func (c *Controller) Clamps() int { return c.clamps }

// Disabled reports how many boards the controller stopped driving
// because they fell off the bus.
func (c *Controller) Disabled() int {
	n := 0
	for i := range c.gpus {
		if c.gpus[i].disabled {
			n++
		}
	}
	return n
}

// History reports every cap move the controller applied, in virtual-time
// order (the final Caps() snapshot is the last move per GPU).
func (c *Controller) History() []CapChange {
	return append([]CapChange(nil), c.history...)
}

// Caps reports the current cap per GPU.
func (c *Controller) Caps() []units.Watts {
	out := make([]units.Watts, len(c.gpus))
	for i, g := range c.gpus {
		out[i] = g.cap
	}
	return out
}

// Start applies the initial caps and schedules the first tick on the
// platform's virtual clock.  Call before the runtime's Run.
func (c *Controller) Start() error {
	caps := make([]units.Watts, len(c.gpus))
	for i := range c.gpus {
		caps[i] = c.gpus[i].cap
	}
	if err := c.plat.SetGPUCaps(caps); err != nil {
		return err
	}
	c.snapshot()
	c.plat.Engine().After(c.cfg.Interval, c.tick)
	return nil
}

// snapshot records the per-GPU counters a tick will difference against.
func (c *Controller) snapshot() {
	for i := range c.gpus {
		c.gpus[i].lastWork = c.plat.GPUWorkDone(i)
		c.gpus[i].lastJ = c.plat.DeviceEnergy()[fmt.Sprintf("GPU%d", i)]
	}
}

// tick is one control decision.
func (c *Controller) tick() {
	if c.Done != nil && c.Done() {
		return
	}
	c.ticks++
	energy := c.plat.DeviceEnergy()
	for i := range c.gpus {
		g := &c.gpus[i]
		if g.disabled {
			continue
		}
		dW := c.plat.GPUWorkDone(i) - g.lastWork
		dJ := energy[fmt.Sprintf("GPU%d", i)] - g.lastJ
		if dJ <= 0 || dW <= 0 {
			continue // idle interval: no signal, hold the cap
		}
		eff := float64(dW) / float64(dJ)
		// Tentative climb: committed to g only once the cap actually
		// lands on the device, so a failed write skips the decision
		// instead of hill-climbing on a cap that was never applied.
		dir, step := g.dir, g.step
		if g.lastEff > 0 && eff < g.lastEff {
			// Efficiency got worse: reverse and refine.
			dir = -dir
			step /= 2
			if step < c.cfg.MinStep {
				step = c.cfg.MinStep
			}
		}
		arch := c.plat.GPUArch
		next := g.cap + units.Watts(dir)*step
		next = units.Watts(units.Clamp(float64(next), float64(arch.MinPower), float64(arch.TDP)))
		if next != g.cap {
			h, ret := c.plat.NVML.DeviceGetHandleByIndex(i)
			err := ret.Error()
			if err == nil {
				err = h.SetPowerManagementLimit(uint32(float64(next) * 1000)).Error()
			}
			if errors.Is(err, nvml.ErrNotFound) {
				g.disabled = true // board fell off the bus: stop driving it
				continue
			}
			if err != nil {
				c.skips++ // transient failure: re-decide next tick
				// The breaker turns "skip every tick forever" into a
				// bounded decision: enough consecutive failures and the
				// board is declared dead, its worker evicted, and the run
				// continues degraded on the survivors.
				if c.plat.NoteCapWriteFailure(i) {
					g.disabled = true
					if c.Evict != nil {
						c.Evict(i)
					}
				}
				continue
			}
			c.plat.NoteCapWriteSuccess(i)
			// Verify-after-set: adopt the value the driver actually kept
			// (it may have clamped or drifted the request) as the new
			// climbing position.
			if got, vret := h.GetPowerManagementLimit(); vret == nvml.SUCCESS {
				actual := units.Watts(float64(got) / 1000)
				if actual != next {
					c.clamps++
					next = actual
				}
			}
			if next != g.cap {
				change := CapChange{T: c.plat.Engine().Now(), GPU: i, Old: g.cap, New: next}
				g.cap = next
				g.moves++
				c.history = append(c.history, change)
				if c.OnCapChange != nil {
					c.OnCapChange(change)
				}
			}
		}
		g.dir, g.step, g.lastEff = dir, step, eff
	}
	c.snapshot()
	c.plat.Engine().After(c.cfg.Interval, c.tick)
}

package obsreport

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/obs"
	"repro/internal/telemetry/agg"
)

// writeJSONL writes one JSON line per value, plus an optional raw tail
// (to simulate a torn line from a crashed run).
func writeJSONL(t *testing.T, path string, vals []any, tail string) {
	t.Helper()
	var b strings.Builder
	for _, v := range vals {
		line, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	b.WriteString(tail)
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

func sampleRollups() []any {
	mk := func(plan string, eff, makespan float64, degraded bool) agg.CellRollup {
		r := agg.CellRollup{
			Key:      "32-AMD-4-A100|gemm|" + plan + "|seed=0",
			GroupKey: "32-AMD-4-A100|gemm|" + plan,
			Platform: "32-AMD-4-A100", Workload: "gemm-40960-double", Plan: plan,
			Scheduler: "dmdas", MakespanS: makespan, EnergyJ: 1000 * makespan,
			GFlopsPerWatt: eff, EDP: 1, ED2P: 1,
		}
		if degraded {
			r.Degraded = true
			r.DegradedPlan = "H_B"
		}
		return r
	}
	return []any{
		mk("HHBB", 0.411, 12.5, false),
		mk("HHHH", 0.322, 10.0, false),
		mk("BBBB", 0.287, 19.75, true),
	}
}

// TestReportRendersAllSections renders a report from synthetic rollups,
// an event log (with a torn tail line) and a checkpoint journal, and
// checks every section made it into the HTML.
func TestReportRendersAllSections(t *testing.T) {
	dir := t.TempDir()
	rollups := filepath.Join(dir, "rollups.jsonl")
	events := filepath.Join(dir, "events.jsonl")
	journal := filepath.Join(dir, "journal.jsonl")
	writeJSONL(t, rollups, sampleRollups(), "")
	writeJSONL(t, events, []any{
		obs.Event{Seq: 1, Type: obs.CellResumed, Cell: "a"},
		obs.Event{Seq: 2, Type: obs.CellResumed, Cell: "b"},
		obs.Event{Seq: 3, Type: obs.WorkerEvicted, Worker: 3, SimTime: 4.25, Detail: "gpu dropout"},
		obs.Event{Seq: 4, Type: obs.BreakerTripped, GPU: 1, SimTime: 6.5},
		obs.Event{Seq: 5, Type: obs.CellFinished, Cell: "a", SimTime: 12.5},
	}, `{"seq":6,"type":"CellSta`) // torn tail from a crash: skipped, not fatal
	writeJSONL(t, journal, []any{
		ckpt.Record{Key: "cell-a", Status: ckpt.StatusRunning},
		ckpt.Record{Key: "cell-a", Status: ckpt.StatusDone},
		ckpt.Record{Key: "cell-b", Status: ckpt.StatusHung},
	}, "")

	out := filepath.Join(dir, "report.html")
	if err := Write(out, Inputs{Rollups: rollups, Events: events, Journal: journal}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	html := string(data)
	for _, want := range []string{
		"3 cell(s) rolled up",
		"2 restored from checkpoint",
		"32-AMD-4-A100 — gemm-40960-double", // heatmap caption
		"0.411",                             // best efficiency cell
		"<svg",                              // duration histogram
		"Degraded cells",
		"H_B", // surviving plan
		"WorkerEvicted",
		"worker 3",
		"gpu dropout",
		"BreakerTripped",
		"GPU 1",
		"hung", // journal timeline status
		"cell-b",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Non-fault events stay out of the fault table.
	if strings.Contains(html, "CellFinished") {
		t.Error("fault table includes non-fault CellFinished events")
	}
	// The heatmap colours scale over the observed efficiency range.
	if !strings.Contains(html, "rgba(46,160,67,0.80)") {
		t.Error("best cell not rendered at full heat")
	}
}

// TestReportOptionalInputs: rollups alone must render, with the event
// and journal sections downgraded to explanatory notes.
func TestReportOptionalInputs(t *testing.T) {
	dir := t.TempDir()
	rollups := filepath.Join(dir, "rollups.jsonl")
	writeJSONL(t, rollups, sampleRollups(), "")
	out := filepath.Join(dir, "report.html")
	if err := Write(out, Inputs{Rollups: rollups}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	html := string(data)
	if !strings.Contains(html, "no event log captured") || !strings.Contains(html, "no checkpoint journal") {
		t.Error("missing-artifact notes absent from report")
	}
}

// TestReportRequiresRollups: a missing rollups file is an error, not an
// empty report.
func TestReportRequiresRollups(t *testing.T) {
	dir := t.TempDir()
	err := Write(filepath.Join(dir, "report.html"), Inputs{Rollups: filepath.Join(dir, "absent.jsonl")})
	if err == nil || !strings.Contains(err.Error(), "rollups") {
		t.Fatalf("err = %v, want a rollups error", err)
	}
	if _, statErr := os.Stat(filepath.Join(dir, "report.html")); !os.IsNotExist(statErr) {
		t.Error("failed render left a report file behind")
	}
}

// Package obsreport renders a self-contained HTML report of one sweep
// from its on-disk artifacts: the aggregation tier's rollups.jsonl,
// the checkpoint journal, and the observability event log.  The report
// is a post-hoc view — it reads only files, never live process state —
// so it can be rebuilt at any time after (or during) a run, including
// from a crashed run's directory.
package obsreport

import (
	"bufio"
	"encoding/json"
	"fmt"
	"html/template"
	"math"
	"os"
	"sort"
	"strings"

	"repro/internal/ckpt"
	"repro/internal/fsutil"
	"repro/internal/obs"
	"repro/internal/telemetry/agg"
)

// Inputs names the artifact files the report is built from.  Rollups
// is required; Journal and Events are optional (their sections render
// as "not captured" when absent).
type Inputs struct {
	Rollups string
	Journal string
	Events  string
}

// Write renders the report atomically to path.
func Write(path string, in Inputs) error {
	d, err := build(in)
	if err != nil {
		return err
	}
	var b strings.Builder
	if err := reportTmpl.Execute(&b, d); err != nil {
		return fmt.Errorf("obsreport: render: %w", err)
	}
	return fsutil.WriteFileAtomic(path, []byte(b.String()), 0o644)
}

// ---- data model ----

type reportData struct {
	Title      string
	Cells      int
	Degraded   []degradedRow
	Heatmaps   []heatmap
	Histogram  template.HTML
	EventRows  []eventRow
	EventNote  string
	Timeline   []timelineRow
	TimeNote   string
	Resumed    int
	EffMin     string
	EffMax     string
	FaultCount int
}

type heatmap struct {
	Caption string   // platform | workload
	Plans   []string // column order
	Rows    []heatmapRow
}

type heatmapRow struct {
	Label string
	Cells []heatCell
}

type heatCell struct {
	Text  string
	Style template.CSS
}

type degradedRow struct {
	Key, Plan, Survivors string
}

type eventRow struct {
	Type, Cell, Where, SimTime, Detail string
}

type timelineRow struct {
	Seq    int
	Status string
	Key    string
}

// ---- building ----

func build(in Inputs) (*reportData, error) {
	rollups, err := readRollups(in.Rollups)
	if err != nil {
		return nil, err
	}
	d := &reportData{
		Title: "capsim sweep report",
		Cells: len(rollups),
	}
	d.Heatmaps, d.EffMin, d.EffMax = buildHeatmaps(rollups)
	d.Histogram = buildHistogram(rollups)
	for _, r := range rollups {
		if r.Degraded {
			d.Degraded = append(d.Degraded, degradedRow{Key: r.Key, Plan: r.Plan, Survivors: r.DegradedPlan})
		}
	}
	sort.Slice(d.Degraded, func(i, j int) bool { return d.Degraded[i].Key < d.Degraded[j].Key })

	if in.Events != "" {
		rows, resumed, err := readEvents(in.Events)
		if err != nil {
			return nil, err
		}
		d.EventRows = rows
		d.Resumed = resumed
		d.FaultCount = len(rows)
	} else {
		d.EventNote = "no event log captured (run with -metrics-addr or -agg-dir)"
	}

	if in.Journal != "" {
		tl, err := readJournal(in.Journal)
		if err != nil {
			return nil, err
		}
		d.Timeline = tl
	} else {
		d.TimeNote = "no checkpoint journal (run with -checkpoint)"
	}
	return d, nil
}

func readRollups(path string) ([]agg.CellRollup, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("obsreport: rollups: %w", err)
	}
	defer f.Close()
	var out []agg.CellRollup
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var r agg.CellRollup
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			return nil, fmt.Errorf("obsreport: rollups line %d: %w", len(out)+1, err)
		}
		out = append(out, r)
	}
	return out, sc.Err()
}

// faultEventTypes are the event types the report's fault table shows.
var faultEventTypes = map[obs.EventType]bool{
	obs.CapRetryExhausted: true,
	obs.BreakerTripped:    true,
	obs.WorkerEvicted:     true,
	obs.CellHung:          true,
	obs.CellPanicked:      true,
	obs.DegradedRun:       true,
}

func readEvents(path string) (rows []eventRow, resumed int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("obsreport: events: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev obs.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			continue // a torn tail line in a crashed run is expected
		}
		if ev.Type == obs.CellResumed {
			resumed++
		}
		if !faultEventTypes[ev.Type] {
			continue
		}
		where := ""
		switch ev.Type {
		case obs.WorkerEvicted:
			where = fmt.Sprintf("worker %d", ev.Worker)
		case obs.CapRetryExhausted, obs.BreakerTripped:
			where = fmt.Sprintf("GPU %d", ev.GPU)
		}
		rows = append(rows, eventRow{
			Type:    string(ev.Type),
			Cell:    shortKey(ev.Cell),
			Where:   where,
			SimTime: fmt.Sprintf("%.3fs", ev.SimTime),
			Detail:  ev.Detail,
		})
	}
	return rows, resumed, sc.Err()
}

// timelineCap bounds the journal rows rendered; the tail is the
// interesting part of a resumed run.
const timelineCap = 200

func readJournal(path string) ([]timelineRow, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("obsreport: journal: %w", err)
	}
	defer f.Close()
	var all []timelineRow
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	seq := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var r ckpt.Record
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			continue // torn tail line after a crash
		}
		seq++
		all = append(all, timelineRow{Seq: seq, Status: string(r.Status), Key: shortKey(r.Key)})
	}
	if len(all) > timelineCap {
		all = all[len(all)-timelineCap:]
	}
	return all, sc.Err()
}

func shortKey(k string) string {
	const max = 72
	if len(k) > max {
		return k[:max] + "…"
	}
	return k
}

// buildHeatmaps renders one efficiency table per (platform, workload),
// rows keyed by scheduler/seed variants, columns by plan.
func buildHeatmaps(rollups []agg.CellRollup) (maps []heatmap, minS, maxS string) {
	if len(rollups) == 0 {
		return nil, "", ""
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, r := range rollups {
		if r.GFlopsPerWatt < min {
			min = r.GFlopsPerWatt
		}
		if r.GFlopsPerWatt > max {
			max = r.GFlopsPerWatt
		}
	}

	type groupKey struct{ platform, workload string }
	groups := make(map[groupKey]map[string]map[string]float64) // group -> rowLabel -> plan -> eff
	planSet := make(map[groupKey]map[string]bool)
	for _, r := range rollups {
		g := groupKey{r.Platform, r.Workload}
		if groups[g] == nil {
			groups[g] = make(map[string]map[string]float64)
			planSet[g] = make(map[string]bool)
		}
		row := r.Scheduler
		if row == "" {
			row = "dmdas"
		}
		if groups[g][row] == nil {
			groups[g][row] = make(map[string]float64)
		}
		groups[g][row][r.Plan] = r.GFlopsPerWatt
		planSet[g][r.Plan] = true
	}

	keys := make([]groupKey, 0, len(groups))
	for g := range groups {
		keys = append(keys, g)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].platform != keys[j].platform {
			return keys[i].platform < keys[j].platform
		}
		return keys[i].workload < keys[j].workload
	})
	for _, g := range keys {
		plans := make([]string, 0, len(planSet[g]))
		for p := range planSet[g] {
			plans = append(plans, p)
		}
		sort.Strings(plans)
		hm := heatmap{Caption: g.platform + " — " + g.workload, Plans: plans}
		rowLabels := make([]string, 0, len(groups[g]))
		for l := range groups[g] {
			rowLabels = append(rowLabels, l)
		}
		sort.Strings(rowLabels)
		for _, l := range rowLabels {
			row := heatmapRow{Label: l}
			for _, p := range plans {
				eff, ok := groups[g][l][p]
				if !ok {
					row.Cells = append(row.Cells, heatCell{Text: "–"})
					continue
				}
				frac := 0.0
				if max > min {
					frac = (eff - min) / (max - min)
				}
				row.Cells = append(row.Cells, heatCell{
					Text:  fmt.Sprintf("%.3f", eff),
					Style: template.CSS(fmt.Sprintf("background:rgba(46,160,67,%.2f)", 0.08+0.72*frac)),
				})
			}
			hm.Rows = append(hm.Rows, row)
		}
		maps = append(maps, hm)
	}
	return maps, fmt.Sprintf("%.3f", min), fmt.Sprintf("%.3f", max)
}

// buildHistogram renders the cell-makespan histogram as inline SVG.
func buildHistogram(rollups []agg.CellRollup) template.HTML {
	if len(rollups) == 0 {
		return ""
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, r := range rollups {
		if r.MakespanS < min {
			min = r.MakespanS
		}
		if r.MakespanS > max {
			max = r.MakespanS
		}
	}
	const bins = 20
	counts := make([]int, bins)
	span := max - min
	for _, r := range rollups {
		b := 0
		if span > 0 {
			b = int(float64(bins) * (r.MakespanS - min) / span)
		}
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	peak := 1
	for _, c := range counts {
		if c > peak {
			peak = c
		}
	}
	const w, h, pad = 640, 160, 24
	barW := float64(w-2*pad) / bins
	var b strings.Builder
	fmt.Fprintf(&b, `<svg width="%d" height="%d" xmlns="http://www.w3.org/2000/svg">`, w, h+24)
	for i, c := range counts {
		bh := float64(h-10) * float64(c) / float64(peak)
		x := pad + float64(i)*barW
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#2ea043"><title>%d cell(s)</title></rect>`,
			x, float64(h)-bh, barW-2, bh, c)
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" fill="#555">%.3fs</text>`, pad, h+16, min)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" fill="#555" text-anchor="end">%.3fs</text>`, w-pad, h+16, max)
	b.WriteString(`</svg>`)
	return template.HTML(b.String())
}

var reportTmpl = template.Must(template.New("report").Parse(`<!doctype html>
<html><head><meta charset="utf-8"><title>{{.Title}}</title>
<style>
body { font: 14px/1.45 system-ui, sans-serif; margin: 2em auto; max-width: 72em; color: #1f2328; }
h1, h2 { font-weight: 600; }
table { border-collapse: collapse; margin: 0.75em 0; }
th, td { border: 1px solid #d0d7de; padding: 0.25em 0.6em; text-align: right; }
th { background: #f6f8fa; }
td.l, th.l { text-align: left; }
.note { color: #656d76; font-style: italic; }
caption { font-weight: 600; text-align: left; padding: 0.4em 0; }
</style></head><body>
<h1>{{.Title}}</h1>
<p>{{.Cells}} cell(s) rolled up{{if .Resumed}}, {{.Resumed}} restored from checkpoint{{end}}.</p>

<h2>Efficiency heatmap (Gflop/s/W)</h2>
{{if .Heatmaps}}<p>Scale: {{.EffMin}} … {{.EffMax}} Gflop/s/W.</p>
{{range .Heatmaps}}<table><caption>{{.Caption}}</caption>
<tr><th class="l">scheduler</th>{{range .Plans}}<th>{{.}}</th>{{end}}</tr>
{{range .Rows}}<tr><td class="l">{{.Label}}</td>{{range .Cells}}<td style="{{.Style}}">{{.Text}}</td>{{end}}</tr>{{end}}
</table>{{end}}{{else}}<p class="note">no rollups</p>{{end}}

<h2>Cell duration histogram (makespan)</h2>
{{.Histogram}}

<h2>Faults and degradation</h2>
{{if .Degraded}}<table><caption>Degraded cells</caption>
<tr><th class="l">cell</th><th>plan</th><th>survivors</th></tr>
{{range .Degraded}}<tr><td class="l">{{.Key}}</td><td>{{.Plan}}</td><td>{{.Survivors}}</td></tr>{{end}}
</table>{{else}}<p>No degraded cells.</p>{{end}}
{{if .EventRows}}<table><caption>Fault-class events ({{.FaultCount}})</caption>
<tr><th class="l">type</th><th class="l">cell</th><th>where</th><th>sim time</th><th class="l">detail</th></tr>
{{range .EventRows}}<tr><td class="l">{{.Type}}</td><td class="l">{{.Cell}}</td><td>{{.Where}}</td><td>{{.SimTime}}</td><td class="l">{{.Detail}}</td></tr>{{end}}
</table>{{else}}<p class="note">{{if .EventNote}}{{.EventNote}}{{else}}No fault-class events.{{end}}</p>{{end}}

<h2>Resume timeline</h2>
{{if .Timeline}}<table>
<tr><th>#</th><th class="l">status</th><th class="l">cell</th></tr>
{{range .Timeline}}<tr><td>{{.Seq}}</td><td class="l">{{.Status}}</td><td class="l">{{.Key}}</td></tr>{{end}}
</table>{{else}}<p class="note">{{.TimeNote}}</p>{{end}}
</body></html>
`))

package nvml

import (
	"testing"

	"repro/internal/eventsim"
	"repro/internal/gpu"
	"repro/internal/units"
)

type fakeSource struct {
	e units.Joules
	p units.Watts
}

func (f *fakeSource) Energy() units.Joules { return f.e }
func (f *fakeSource) Power() units.Watts   { return f.p }

func newTestAPI(t *testing.T, n int, withSources bool) (*API, []*fakeSource) {
	t.Helper()
	var devices []*gpu.Device
	var sources []EnergySource
	var fakes []*fakeSource
	for i := 0; i < n; i++ {
		devices = append(devices, gpu.NewDevice(gpu.A100SXM4(), i))
		if withSources {
			f := &fakeSource{e: units.Joules(100 * float64(i+1)), p: 55}
			fakes = append(fakes, f)
			sources = append(sources, f)
		}
	}
	return New(devices, sources), fakes
}

func TestUninitialised(t *testing.T) {
	api, _ := newTestAPI(t, 2, true)
	if _, ret := api.DeviceGetCount(); ret != ERROR_UNINITIALIZED {
		t.Errorf("DeviceGetCount before Init = %v, want ERROR_UNINITIALIZED", ret)
	}
	if ret := api.Shutdown(); ret != ERROR_UNINITIALIZED {
		t.Errorf("Shutdown before Init = %v", ret)
	}
}

func TestDeviceEnumeration(t *testing.T) {
	api, _ := newTestAPI(t, 4, true)
	if ret := api.Init(); ret != SUCCESS {
		t.Fatal(ret)
	}
	defer api.Shutdown()
	n, ret := api.DeviceGetCount()
	if ret != SUCCESS || n != 4 {
		t.Fatalf("DeviceGetCount = %d, %v", n, ret)
	}
	for i := 0; i < n; i++ {
		d, ret := api.DeviceGetHandleByIndex(i)
		if ret != SUCCESS {
			t.Fatalf("handle %d: %v", i, ret)
		}
		name, ret := d.GetName()
		if ret != SUCCESS || name != gpu.A100SXM4Name {
			t.Errorf("GetName = %q, %v", name, ret)
		}
	}
	if _, ret := api.DeviceGetHandleByIndex(99); ret != ERROR_INVALID_ARGUMENT {
		t.Errorf("out-of-range handle = %v", ret)
	}
	if _, ret := api.DeviceGetHandleByIndex(-1); ret != ERROR_INVALID_ARGUMENT {
		t.Errorf("negative handle = %v", ret)
	}
}

func TestPowerLimitRoundTrip(t *testing.T) {
	api, _ := newTestAPI(t, 1, true)
	api.Init()
	defer api.Shutdown()
	d, _ := api.DeviceGetHandleByIndex(0)

	lim, ret := d.GetPowerManagementLimit()
	if ret != SUCCESS || lim != 400000 {
		t.Fatalf("default limit = %d mW, %v; want 400000", lim, ret)
	}
	min, max, ret := d.GetPowerManagementLimitConstraints()
	if ret != SUCCESS || min != 100000 || max != 400000 {
		t.Fatalf("constraints = [%d, %d], %v", min, max, ret)
	}
	if ret := d.SetPowerManagementLimit(216000); ret != SUCCESS {
		t.Fatalf("SetPowerManagementLimit: %v", ret)
	}
	lim, _ = d.GetPowerManagementLimit()
	if lim != 216000 {
		t.Errorf("limit after set = %d mW, want 216000", lim)
	}
	if ret := d.SetPowerManagementLimit(50000); ret != ERROR_INVALID_ARGUMENT {
		t.Errorf("below-min cap = %v, want ERROR_INVALID_ARGUMENT", ret)
	}
	enforced, ret := d.GetEnforcedPowerLimit()
	if ret != SUCCESS || enforced != 216000 {
		t.Errorf("enforced limit = %d, %v", enforced, ret)
	}
}

func TestEnergyCounters(t *testing.T) {
	api, fakes := newTestAPI(t, 2, true)
	api.Init()
	defer api.Shutdown()
	d, _ := api.DeviceGetHandleByIndex(1)
	e, ret := d.GetTotalEnergyConsumption()
	if ret != SUCCESS || e != 200000 { // 200 J in mJ
		t.Errorf("energy = %d mJ, %v; want 200000", e, ret)
	}
	p, ret := d.GetPowerUsage()
	if ret != SUCCESS || p != 55000 {
		t.Errorf("power = %d mW, %v; want 55000", p, ret)
	}
	fakes[1].e = 300
	e, _ = d.GetTotalEnergyConsumption()
	if e != 300000 {
		t.Errorf("energy after update = %d mJ, want 300000", e)
	}
}

func TestNoSource(t *testing.T) {
	api, _ := newTestAPI(t, 1, false)
	api.Init()
	defer api.Shutdown()
	d, _ := api.DeviceGetHandleByIndex(0)
	if _, ret := d.GetTotalEnergyConsumption(); ret != ERROR_NOT_SUPPORTED {
		t.Errorf("energy without source = %v, want ERROR_NOT_SUPPORTED", ret)
	}
	if _, ret := d.GetPowerUsage(); ret != ERROR_NOT_SUPPORTED {
		t.Errorf("power without source = %v, want ERROR_NOT_SUPPORTED", ret)
	}
}

func TestReturnStrings(t *testing.T) {
	cases := map[Return]string{
		SUCCESS:                "SUCCESS",
		ERROR_UNINITIALIZED:    "ERROR_UNINITIALIZED",
		ERROR_INVALID_ARGUMENT: "ERROR_INVALID_ARGUMENT",
		ERROR_NOT_SUPPORTED:    "ERROR_NOT_SUPPORTED",
		ERROR_NO_PERMISSION:    "ERROR_NO_PERMISSION",
		ERROR_NOT_FOUND:        "ERROR_NOT_FOUND",
		ERROR_UNKNOWN:          "ERROR_UNKNOWN",
	}
	for r, want := range cases {
		if r.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(r), r.String(), want)
		}
	}
	if SUCCESS.Error() != nil {
		t.Error("SUCCESS.Error() should be nil")
	}
	if ERROR_UNKNOWN.Error() == nil {
		t.Error("ERROR_UNKNOWN.Error() should be non-nil")
	}
}

type fakeTraceSource struct {
	fakeSource
	trace []eventsim.PowerSample
	now   units.Seconds
}

func (f *fakeTraceSource) Trace() []eventsim.PowerSample { return f.trace }
func (f *fakeTraceSource) Now() units.Seconds            { return f.now }

func TestGetTemperature(t *testing.T) {
	dev := gpu.NewDevice(gpu.A100SXM4(), 0)
	src := &fakeTraceSource{}
	api := New([]*gpu.Device{dev}, []EnergySource{src})
	api.Init()
	defer api.Shutdown()
	h, _ := api.DeviceGetHandleByIndex(0)

	// Trace not enabled: unsupported.
	if _, ret := h.GetTemperature(); ret != ERROR_NOT_SUPPORTED {
		t.Errorf("temperature without trace = %v", ret)
	}
	// A long full-power segment: temperature near steady state.
	src.trace = []eventsim.PowerSample{{T: 0, Power: 360}}
	src.now = 1000
	temp, ret := h.GetTemperature()
	if ret != SUCCESS {
		t.Fatalf("GetTemperature: %v", ret)
	}
	want := dev.Arch().Thermal.SteadyStateC(360)
	if d := float64(temp) - want; d > 1 || d < -1 {
		t.Errorf("temperature = %d, want ~%.0f", temp, want)
	}
	// Plain EnergySource (no trace capability): unsupported.
	plain := New([]*gpu.Device{gpu.NewDevice(gpu.A100SXM4(), 0)}, []EnergySource{&fakeSource{}})
	plain.Init()
	defer plain.Shutdown()
	hp, _ := plain.DeviceGetHandleByIndex(0)
	if _, ret := hp.GetTemperature(); ret != ERROR_NOT_SUPPORTED {
		t.Errorf("temperature on plain source = %v", ret)
	}
}

// Package nvml exposes the simulated GPUs through an API shaped like the
// NVIDIA Management Library (and its go-nvml binding): integer return
// codes, handle-based device access, milliwatt power limits and
// millijoule energy counters.
//
// Experiment code talks to the devices exclusively through this facade,
// exactly as the paper's scripts drove nvidia-smi/NVML — swapping in real
// hardware would mean re-implementing only this package.
package nvml

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/eventsim"
	"repro/internal/gpu"
	"repro/internal/units"
)

// Return is an NVML-style status code.
type Return int

// NVML status codes (the subset the experiments exercise).
const (
	SUCCESS Return = iota
	ERROR_UNINITIALIZED
	ERROR_INVALID_ARGUMENT
	ERROR_NOT_SUPPORTED
	ERROR_NO_PERMISSION
	ERROR_NOT_FOUND
	ERROR_UNKNOWN
)

// String reports the NVML-style constant name.
func (r Return) String() string {
	switch r {
	case SUCCESS:
		return "SUCCESS"
	case ERROR_UNINITIALIZED:
		return "ERROR_UNINITIALIZED"
	case ERROR_INVALID_ARGUMENT:
		return "ERROR_INVALID_ARGUMENT"
	case ERROR_NOT_SUPPORTED:
		return "ERROR_NOT_SUPPORTED"
	case ERROR_NO_PERMISSION:
		return "ERROR_NO_PERMISSION"
	case ERROR_NOT_FOUND:
		return "ERROR_NOT_FOUND"
	}
	return "ERROR_UNKNOWN"
}

// Per-code sentinel errors.  Return.Error wraps these, so callers gate
// retry logic with errors.Is(err, nvml.ErrUnknown) instead of matching
// the message string.  ErrUnknown doubles as the driver's transient
// EBUSY-style failure, the one worth retrying.
var (
	ErrUninitialized   = errors.New("ERROR_UNINITIALIZED")
	ErrInvalidArgument = errors.New("ERROR_INVALID_ARGUMENT")
	ErrNotSupported    = errors.New("ERROR_NOT_SUPPORTED")
	ErrNoPermission    = errors.New("ERROR_NO_PERMISSION")
	ErrNotFound        = errors.New("ERROR_NOT_FOUND")
	ErrUnknown         = errors.New("ERROR_UNKNOWN")
)

// sentinel maps a non-SUCCESS Return to its sentinel error.
func (r Return) sentinel() error {
	switch r {
	case ERROR_UNINITIALIZED:
		return ErrUninitialized
	case ERROR_INVALID_ARGUMENT:
		return ErrInvalidArgument
	case ERROR_NOT_SUPPORTED:
		return ErrNotSupported
	case ERROR_NO_PERMISSION:
		return ErrNoPermission
	case ERROR_NOT_FOUND:
		return ErrNotFound
	}
	return ErrUnknown
}

// Error converts a non-SUCCESS Return into a Go error (nil on SUCCESS).
// The error wraps the code's sentinel (errors.Is-able) and renders as
// "nvml: <CODE>", the historical message format.
func (r Return) Error() error {
	if r == SUCCESS {
		return nil
	}
	return fmt.Errorf("nvml: %w", r.sentinel())
}

// Transient reports whether the code is worth retrying: ERROR_UNKNOWN is
// how the driver surfaces EBUSY-style contention on the power-management
// interface (the failure mode the cap applicator's backoff absorbs).
func (r Return) Transient() bool { return r == ERROR_UNKNOWN }

// EnergySource lets the platform layer supply live power/energy readings
// for a device (a power meter attached to the simulation clock).
type EnergySource interface {
	// Energy reports cumulative Joules since the source was created.
	Energy() units.Joules
	// Power reports the instantaneous draw.
	Power() units.Watts
}

// TraceSource is the optional extension of EnergySource that exposes
// the recorded power trace and the current virtual time — enough to
// evaluate the board's RC thermal model for GetTemperature.
type TraceSource interface {
	EnergySource
	Trace() []eventsim.PowerSample
	Now() units.Seconds
}

// CapFaultPolicy intercepts power-limit writes before they reach the
// device — the seam the fault injector plugs into.  It may rewrite the
// requested milliwatts (driver-side clamping) or veto the call with a
// non-SUCCESS code (EBUSY-style transient failures surface as
// ERROR_UNKNOWN).  A nil policy passes every write through untouched.
type CapFaultPolicy interface {
	OnSetPowerLimit(index int, requestedMW uint32) (mw uint32, ret Return)
}

// API is one NVML library instance bound to a node's GPUs.
type API struct {
	mu       sync.Mutex
	inited   bool
	devices  []*Device
	capFault CapFaultPolicy
}

// SetCapFaultPolicy installs (or clears, with nil) the power-limit write
// interceptor.  Fault injection only; real NVML has no equivalent.
func (a *API) SetCapFaultPolicy(p CapFaultPolicy) {
	a.mu.Lock()
	a.capFault = p
	a.mu.Unlock()
}

func (a *API) capFaultPolicy() CapFaultPolicy {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.capFault
}

// Device is an NVML device handle.
type Device struct {
	api    *API
	dev    *gpu.Device
	energy EnergySource
}

// New builds an API over the node's boards.  sources may be nil or
// shorter than devices; devices without a source report
// ERROR_NOT_SUPPORTED for energy queries (as some boards do).
func New(devices []*gpu.Device, sources []EnergySource) *API {
	api := &API{}
	for i, d := range devices {
		var src EnergySource
		if i < len(sources) {
			src = sources[i]
		}
		api.devices = append(api.devices, &Device{api: api, dev: d, energy: src})
	}
	return api
}

// Init must be called before any query, mirroring nvmlInit.
func (a *API) Init() Return {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.inited = true
	return SUCCESS
}

// Shutdown releases the library, mirroring nvmlShutdown.
func (a *API) Shutdown() Return {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.inited {
		return ERROR_UNINITIALIZED
	}
	a.inited = false
	return SUCCESS
}

func (a *API) ready() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inited
}

// DeviceGetCount reports the number of boards.
func (a *API) DeviceGetCount() (int, Return) {
	if !a.ready() {
		return 0, ERROR_UNINITIALIZED
	}
	return len(a.devices), SUCCESS
}

// DeviceGetHandleByIndex returns the handle for board #index.
func (a *API) DeviceGetHandleByIndex(index int) (*Device, Return) {
	if !a.ready() {
		return nil, ERROR_UNINITIALIZED
	}
	if index < 0 || index >= len(a.devices) {
		return nil, ERROR_INVALID_ARGUMENT
	}
	return a.devices[index], SUCCESS
}

// GetName reports the board's marketing name.
func (d *Device) GetName() (string, Return) {
	if !d.api.ready() {
		return "", ERROR_UNINITIALIZED
	}
	return d.dev.Arch().Name, SUCCESS
}

// GetPowerManagementLimit reports the software cap in milliwatts — the
// value SetPowerManagementLimit configured (TDP when uncapped), not
// reduced by thermal throttling.  The verify-after-set applicator
// compares against this.
func (d *Device) GetPowerManagementLimit() (uint32, Return) {
	if !d.api.ready() {
		return 0, ERROR_UNINITIALIZED
	}
	return uint32(float64(d.dev.ConfiguredLimit()) * 1000), SUCCESS
}

// GetPowerManagementLimitConstraints reports [min, max] in milliwatts.
func (d *Device) GetPowerManagementLimitConstraints() (min, max uint32, ret Return) {
	if !d.api.ready() {
		return 0, 0, ERROR_UNINITIALIZED
	}
	a := d.dev.Arch()
	return uint32(float64(a.MinPower) * 1000), uint32(float64(a.TDP) * 1000), SUCCESS
}

// SetPowerManagementLimit applies a cap given in milliwatts; zero
// restores the default limit.  Out-of-window caps are rejected with
// ERROR_INVALID_ARGUMENT, matching the driver.
func (d *Device) SetPowerManagementLimit(milliwatts uint32) Return {
	if !d.api.ready() {
		return ERROR_UNINITIALIZED
	}
	if !d.dev.Alive() {
		return ERROR_NOT_FOUND // board fell off the bus
	}
	if p := d.api.capFaultPolicy(); p != nil {
		mw, ret := p.OnSetPowerLimit(d.dev.Index(), milliwatts)
		if ret != SUCCESS {
			return ret
		}
		milliwatts = mw
	}
	if err := d.dev.SetPowerLimit(units.Watts(float64(milliwatts) / 1000)); err != nil {
		return ERROR_INVALID_ARGUMENT
	}
	return SUCCESS
}

// GetEnforcedPowerLimit reports the limit actually enforced (mW): the
// software cap further reduced by an active thermal-throttle window,
// matching real NVML's min-of-all-limits semantics.
func (d *Device) GetEnforcedPowerLimit() (uint32, Return) {
	if !d.api.ready() {
		return 0, ERROR_UNINITIALIZED
	}
	return uint32(float64(d.dev.PowerLimit()) * 1000), SUCCESS
}

// GetPowerUsage reports the instantaneous draw in milliwatts.
func (d *Device) GetPowerUsage() (uint32, Return) {
	if !d.api.ready() {
		return 0, ERROR_UNINITIALIZED
	}
	if d.energy == nil {
		return 0, ERROR_NOT_SUPPORTED
	}
	return uint32(float64(d.energy.Power()) * 1000), SUCCESS
}

// GetTotalEnergyConsumption reports cumulative millijoules since the
// source was attached (NVML counts since driver load).
func (d *Device) GetTotalEnergyConsumption() (uint64, Return) {
	if !d.api.ready() {
		return 0, ERROR_UNINITIALIZED
	}
	if d.energy == nil {
		return 0, ERROR_NOT_SUPPORTED
	}
	return uint64(float64(d.energy.Energy()) * 1000), SUCCESS
}

// GetTemperature reports the board temperature in °C, evaluated from
// the device's RC thermal model over its recorded power trace.  It
// needs a TraceSource with tracing enabled; otherwise
// ERROR_NOT_SUPPORTED (matching boards without thermal sensors).
func (d *Device) GetTemperature() (uint32, Return) {
	if !d.api.ready() {
		return 0, ERROR_UNINITIALIZED
	}
	ts, ok := d.energy.(TraceSource)
	if !ok {
		return 0, ERROR_NOT_SUPPORTED
	}
	trace := ts.Trace()
	if trace == nil {
		return 0, ERROR_NOT_SUPPORTED
	}
	temp := d.dev.Arch().Thermal.TemperatureAt(trace, ts.Now())
	if temp < 0 {
		temp = 0
	}
	return uint32(temp + 0.5), SUCCESS
}

// Underlying exposes the simulated board (for the platform layer; real
// NVML has no equivalent, so experiment code must not use it).
func (d *Device) Underlying() *gpu.Device { return d.dev }

package nvml

import (
	"errors"
	"testing"

	"repro/internal/gpu"
)

func TestSentinelErrors(t *testing.T) {
	cases := []struct {
		ret  Return
		want error
	}{
		{ERROR_UNINITIALIZED, ErrUninitialized},
		{ERROR_INVALID_ARGUMENT, ErrInvalidArgument},
		{ERROR_NOT_SUPPORTED, ErrNotSupported},
		{ERROR_NO_PERMISSION, ErrNoPermission},
		{ERROR_NOT_FOUND, ErrNotFound},
		{ERROR_UNKNOWN, ErrUnknown},
	}
	for _, c := range cases {
		err := c.ret.Error()
		if !errors.Is(err, c.want) {
			t.Errorf("%v.Error() = %v, not errors.Is %v", c.ret, err, c.want)
		}
		// The historical message format must survive the wrapping.
		if got, want := err.Error(), "nvml: "+c.ret.String(); got != want {
			t.Errorf("%v.Error().Error() = %q, want %q", c.ret, got, want)
		}
	}
	if err := SUCCESS.Error(); err != nil {
		t.Errorf("SUCCESS.Error() = %v, want nil", err)
	}
	if errors.Is(ERROR_NOT_FOUND.Error(), ErrUnknown) {
		t.Error("ERROR_NOT_FOUND must not match ErrUnknown")
	}
}

func TestTransient(t *testing.T) {
	for _, r := range []Return{SUCCESS, ERROR_UNINITIALIZED, ERROR_INVALID_ARGUMENT, ERROR_NOT_SUPPORTED, ERROR_NO_PERMISSION, ERROR_NOT_FOUND} {
		if r.Transient() {
			t.Errorf("%v.Transient() = true, want false", r)
		}
	}
	if !ERROR_UNKNOWN.Transient() {
		t.Error("ERROR_UNKNOWN.Transient() = false, want true")
	}
}

// scriptedPolicy replays a fixed per-call script of (rewrite, code).
type scriptedPolicy struct {
	calls []struct {
		mw  uint32
		ret Return
	}
	n int
}

func (p *scriptedPolicy) OnSetPowerLimit(index int, requested uint32) (uint32, Return) {
	if p.n >= len(p.calls) {
		return requested, SUCCESS
	}
	c := p.calls[p.n]
	p.n++
	if c.mw == 0 {
		c.mw = requested
	}
	return c.mw, c.ret
}

func TestCapFaultPolicyVetoAndClamp(t *testing.T) {
	api, _ := newTestAPI(t, 1, false)
	api.Init()
	h, _ := api.DeviceGetHandleByIndex(0)

	pol := &scriptedPolicy{}
	pol.calls = append(pol.calls,
		struct {
			mw  uint32
			ret Return
		}{0, ERROR_UNKNOWN}, // transient veto
		struct {
			mw  uint32
			ret Return
		}{250_000, SUCCESS}, // clamp the request to 250 W
	)
	api.SetCapFaultPolicy(pol)

	if ret := h.SetPowerManagementLimit(300_000); ret != ERROR_UNKNOWN {
		t.Fatalf("vetoed set = %v, want ERROR_UNKNOWN", ret)
	}
	// A vetoed write must leave the device untouched.
	tdpMW := uint32(float64(gpu.A100SXM4().TDP) * 1000)
	if got, _ := h.GetPowerManagementLimit(); got != tdpMW {
		t.Fatalf("limit after veto = %d mW, want default %d mW", got, tdpMW)
	}

	if ret := h.SetPowerManagementLimit(300_000); ret != SUCCESS {
		t.Fatalf("clamped set = %v, want SUCCESS", ret)
	}
	if got, _ := h.GetPowerManagementLimit(); got != 250_000 {
		t.Fatalf("limit after clamp = %d mW, want 250000 (the clamped value)", got)
	}

	// Clearing the policy restores pass-through.
	api.SetCapFaultPolicy(nil)
	if ret := h.SetPowerManagementLimit(300_000); ret != SUCCESS {
		t.Fatalf("set after clearing policy = %v", ret)
	}
	if got, _ := h.GetPowerManagementLimit(); got != 300_000 {
		t.Fatalf("limit = %d mW, want 300000", got)
	}
}

func TestDeadDeviceCapping(t *testing.T) {
	api, _ := newTestAPI(t, 1, false)
	api.Init()
	h, _ := api.DeviceGetHandleByIndex(0)
	h.Underlying().MarkDead()
	ret := h.SetPowerManagementLimit(300_000)
	if ret != ERROR_NOT_FOUND {
		t.Fatalf("set on dead board = %v, want ERROR_NOT_FOUND", ret)
	}
	if !errors.Is(ret.Error(), ErrNotFound) {
		t.Fatalf("dead-board error %v must match ErrNotFound", ret.Error())
	}
}

func TestEnforcedVsConfiguredLimit(t *testing.T) {
	api, _ := newTestAPI(t, 1, false)
	api.Init()
	h, _ := api.DeviceGetHandleByIndex(0)
	if ret := h.SetPowerManagementLimit(300_000); ret != SUCCESS {
		t.Fatalf("set: %v", ret)
	}
	h.Underlying().SetThrottle(200)
	if got, _ := h.GetPowerManagementLimit(); got != 300_000 {
		t.Errorf("configured limit under throttle = %d mW, want 300000", got)
	}
	if got, _ := h.GetEnforcedPowerLimit(); got != 200_000 {
		t.Errorf("enforced limit under throttle = %d mW, want 200000", got)
	}
	h.Underlying().ClearThrottle()
	if got, _ := h.GetEnforcedPowerLimit(); got != 300_000 {
		t.Errorf("enforced limit after clear = %d mW, want 300000", got)
	}
}

# Developer entry points. `make check` is the full gate: build, vet and
# the race-enabled test suite (the telemetry exporter reads the
# simulation's data structures from HTTP goroutines, so -race is load-
# bearing, not decoration).

GO ?= go

.PHONY: all build vet test check bench fuzz-short clean

# How long each fuzz target runs under fuzz-short (CI uses the default).
FUZZTIME ?= 10s

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

check:
	$(GO) build ./... && $(GO) vet ./... && $(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Short coverage-guided fuzz pass over both fuzz targets: the plan
# parser (input validation) and the event engine (ordering/determinism
# under adversarial schedules).  Go runs one fuzz target per invocation.
fuzz-short:
	$(GO) test -run '^$$' -fuzz '^FuzzParsePlan$$' -fuzztime $(FUZZTIME) ./internal/powercap
	$(GO) test -run '^$$' -fuzz '^FuzzEventOrdering$$' -fuzztime $(FUZZTIME) ./internal/eventsim

clean:
	$(GO) clean ./...

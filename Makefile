# Developer entry points. `make check` is the full gate: build, vet and
# the race-enabled test suite (the telemetry exporter reads the
# simulation's data structures from HTTP goroutines, so -race is load-
# bearing, not decoration).

GO ?= go

.PHONY: all build vet test check bench fuzz-short trace-demo clean

# How long each fuzz target runs under fuzz-short (CI uses the default).
FUZZTIME ?= 10s

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

check:
	$(GO) build ./... && $(GO) vet ./... && $(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Short coverage-guided fuzz pass over both fuzz targets: the plan
# parser (input validation) and the event engine (ordering/determinism
# under adversarial schedules).  Go runs one fuzz target per invocation.
fuzz-short:
	$(GO) test -run '^$$' -fuzz '^FuzzParsePlan$$' -fuzztime $(FUZZTIME) ./internal/powercap
	$(GO) test -run '^$$' -fuzz '^FuzzEventOrdering$$' -fuzztime $(FUZZTIME) ./internal/eventsim

# Span-tracer smoke test: analyze a tiny POTRF under an unbalanced
# plan and export a Chrome trace.  The analyze subcommand re-reads the
# written JSON and fails if it does not decode as a Chrome event array,
# so this target is the trace-format gate CI runs.
trace-demo:
	mkdir -p /tmp/capsim-trace-demo
	$(GO) run ./cmd/schedtrace analyze -platform 24-Intel-2-V100 -op potrf \
		-scale 10 -plan HB -chrome /tmp/capsim-trace-demo/potrf.json \
		-folded /tmp/capsim-trace-demo/potrf.folded

clean:
	$(GO) clean ./...

# Developer entry points. `make check` is the full gate: build, vet and
# the race-enabled test suite (the telemetry exporter reads the
# simulation's data structures from HTTP goroutines, so -race is load-
# bearing, not decoration).

GO ?= go

.PHONY: all build vet test check bench bench-json bench-gate fuzz-short chaos-short resume-short agg-short obs-short shard-short coordkill-short trace-demo clean

# How long each fuzz target runs under fuzz-short (CI uses the default).
FUZZTIME ?= 10s

# How many seeded fault schedules chaos-short runs (the in-package
# default is 50; CI trims it because the fleet runs under -race).
CHAOS_SCHEDULES ?= 10

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

check:
	$(GO) build ./... && $(GO) vet ./... && $(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Provenance stamped into the benchmark trajectories.  Overridable so
# CI (or a reproducer) can pin them; BENCH_PASS labels which
# optimization pass a BENCH_hotpath.json entry belongs to.
# `describe --always --dirty` marks entries measured with uncommitted
# changes: a pass's entry is measured and committed together, so it
# reads "<parent sha>-dirty" — the code is the parent plus the diff of
# the very commit carrying the entry.  The pass label is the stable key.
GIT_SHA ?= $(shell git describe --always --dirty 2>/dev/null || git rev-parse --short HEAD)
BENCH_DATE ?= $(shell date -u +%F)
BENCH_PASS ?= $(GIT_SHA)

# Machine-readable benchmark trajectories: run the parallel-executor
# benchmark and the serial hot-path benchmark, then append their BENCH
# JSON lines — stamped with git SHA, date and pass label — to the
# committed JSONL trajectories (BENCH_sweep.json, BENCH_hotpath.json).
# Appending (not overwriting) keeps the perf history reviewable in
# every PR's diff; benchgate replaces the last entry when re-run at the
# same commit, so the target is idempotent.
bench-json:
	$(GO) test -bench 'BenchmarkParallelSpeedup' -benchtime 1x -run '^$$' . \
	    | sed -n 's/^BENCH //p' > /tmp/bench_sweep_line.json
	@test -s /tmp/bench_sweep_line.json || { echo "bench-json: no BENCH line captured" >&2; exit 1; }
	$(GO) run ./scripts/benchgate -mode append -file BENCH_sweep.json \
	    -measured /tmp/bench_sweep_line.json -sha $(GIT_SHA) -date $(BENCH_DATE)
	$(GO) test -bench 'BenchmarkHotpathCells' -benchtime 1x -run '^$$' ./internal/benchcheck \
	    | sed -n 's/^BENCH_HOTPATH //p' > /tmp/bench_hotpath_line.json
	@test -s /tmp/bench_hotpath_line.json || { echo "bench-json: no BENCH_HOTPATH line captured" >&2; exit 1; }
	$(GO) run ./scripts/benchgate -mode append -file BENCH_hotpath.json \
	    -measured /tmp/bench_hotpath_line.json -sha $(GIT_SHA) -date $(BENCH_DATE) -pass "$(BENCH_PASS)"

# Hot-path regression gate (the CI bench-gate job): warmup + measured
# run of the reduced Fig. 4 benchmark, compared against the newest
# committed BENCH_hotpath.json entry.  Noise-tolerant on wall clock
# (BENCH_GATE_TOLERANCE), strict on allocations; drops pprof profiles
# in bench-artifacts/ when it fails.
bench-gate:
	GO="$(GO)" bash scripts/bench_gate.sh

# Short coverage-guided fuzz pass over both fuzz targets: the plan
# parser (input validation) and the event engine (ordering/determinism
# under adversarial schedules).  Go runs one fuzz target per invocation.
fuzz-short:
	$(GO) test -run '^$$' -fuzz '^FuzzParsePlan$$' -fuzztime $(FUZZTIME) ./internal/powercap
	$(GO) test -run '^$$' -fuzz '^FuzzEventOrdering$$' -fuzztime $(FUZZTIME) ./internal/eventsim

# Race-enabled chaos fleet: seeded fault schedules through the full
# core.Run path, checking completion-or-DegradedRun, attribution
# closure and the parallel determinism contract with faults enabled.
chaos-short:
	$(GO) test -race -run 'Chaos' ./internal/core/ -chaos.schedules=$(CHAOS_SCHEDULES)

# Kill-and-resume smoke: SIGKILL a checkpointed grid mid-sweep, resume
# at a different -parallel, and diff against a clean run byte-for-byte
# (the crash-safety contract of DESIGN §12).
resume-short:
	GO="$(GO)" bash scripts/resume_smoke.sh

# Aggregation smoke: the rollup surface must be byte-identical across
# worker counts and across a SIGKILL + -resume (DESIGN §13).
agg-short:
	GO="$(GO)" bash scripts/agg_smoke.sh

# Observability smoke: a live sweep with -metrics-addr must serve the
# /progress schema, the run-identity and runtime self-metric families,
# a working /events SSE stream, persist events.jsonl, and render the
# HTML sweep report (DESIGN §15).
obs-short:
	GO="$(GO)" bash scripts/obs_smoke.sh

# Sharded-sweep smoke: capserved + 3 supervised capworkers with a
# SIGKILL and a SIGSTOP/CONT injected mid-sweep must produce
# surface.json and digests.json byte-identical to a serial run, and a
# poisoned cell must quarantine within the kill budget without
# stalling the rest (DESIGN §16).
shard-short:
	GO="$(GO)" bash scripts/shard_smoke.sh

# Coordinator-kill smoke: a capserved service with a durable job queue
# behind seeded wire faults takes four jobs (one cancelled while
# queued), dies by SIGKILL mid-sweep and is restarted over the same
# directories.  Every job must resume from the state journal and end
# byte-identical to uninterrupted baselines; the cancelled job must
# leave no artifacts (DESIGN §17).
coordkill-short:
	GO="$(GO)" bash scripts/coordkill_smoke.sh

# Span-tracer smoke test: analyze a tiny POTRF under an unbalanced
# plan and export a Chrome trace.  The analyze subcommand re-reads the
# written JSON and fails if it does not decode as a Chrome event array,
# so this target is the trace-format gate CI runs.
trace-demo:
	mkdir -p /tmp/capsim-trace-demo
	$(GO) run ./cmd/schedtrace analyze -platform 24-Intel-2-V100 -op potrf \
		-scale 10 -plan HB -chrome /tmp/capsim-trace-demo/potrf.json \
		-folded /tmp/capsim-trace-demo/potrf.folded

clean:
	$(GO) clean ./...

# Developer entry points. `make check` is the full gate: build, vet and
# the race-enabled test suite (the telemetry exporter reads the
# simulation's data structures from HTTP goroutines, so -race is load-
# bearing, not decoration).

GO ?= go

.PHONY: all build vet test check bench clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

check:
	$(GO) build ./... && $(GO) vet ./... && $(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

clean:
	$(GO) clean ./...

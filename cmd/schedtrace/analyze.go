package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/platform"
	"repro/internal/powercap"
	"repro/internal/prec"
	"repro/internal/spantrace"
	"repro/internal/telemetry/agg"
	"repro/internal/trace"
)

// runAnalyze implements the analyze subcommand: run one configuration
// with the span tracer attached and print the causal analysis —
// critical path with its power-state composition, per-worker idle
// breakdown, top energy task types and the per-device energy
// reconciliation (the per-run view behind the paper's Fig. 5 split).
// Chrome traces written here are parsed back before reporting success,
// so an invalid artifact fails the command (the CI smoke test relies
// on this).
func runAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	platName := fs.String("platform", platform.FourA100Name, "platform name")
	opName := fs.String("op", "gemm", "gemm or potrf")
	precName := fs.String("precision", "double", "single or double")
	planStr := fs.String("plan", "", "power plan (default all-H)")
	sched := fs.String("scheduler", "dmdas", "scheduling policy")
	scale := fs.Int("scale", 4, "divide the Table II matrix order by this factor")
	topK := fs.Int("top", 10, "rows in the top-energy task-type table")
	chromePath := fs.String("chrome", "", "write the Chrome trace (with causal flow arrows) to this path")
	foldedPath := fs.String("folded", "", "write folded energy stacks (flamegraph input) to this path")
	seed := fs.Int64("seed", 0, "seed for randomised schedulers")
	rollupPath := fs.String("rollup", "",
		"write the run's cell rollup (scalars + task-level quantile sketches) as one JSON line to this path")
	faultSpec := fs.String("faults", "",
		"deterministic fault injection spec, e.g. capfail=0.3,dropout=1 (seeded from -seed)")
	fs.Parse(args)
	injected, err := faults.ParseSpec(*faultSpec)
	if err != nil {
		return fmt.Errorf("-faults: %w", err)
	}

	op := core.GEMM
	if *opName == "potrf" {
		op = core.POTRF
	} else if *opName != "gemm" {
		return fmt.Errorf("unknown op %q", *opName)
	}
	p := prec.Double
	if *precName == "single" {
		p = prec.Single
	} else if *precName != "double" {
		return fmt.Errorf("unknown precision %q", *precName)
	}
	row, err := core.LookupTableII(*platName, op, p)
	if err != nil {
		return err
	}
	if *scale > 1 {
		nt := row.N / row.NB / *scale
		if nt < 2 {
			nt = 2
		}
		row.N = nt * row.NB
	}
	spec, err := platform.SpecByName(*platName)
	if err != nil {
		return err
	}
	plan := powercap.MustParsePlan(allHigh(spec.GPUCount))
	if *planStr != "" {
		if plan, err = powercap.ParsePlan(*planStr); err != nil {
			return err
		}
	}
	cfg := core.Config{
		Spec:      spec,
		Workload:  row.Workload(),
		Plan:      plan,
		BestFrac:  row.BestFrac,
		Scheduler: *sched,
		Seed:      *seed,
		Trace:     true,
		Faults:    injected,
	}

	res, err := core.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%s on %s, plan %s, scheduler %s\n\n", row.Workload(), *platName,
		powercap.Describe(plan, spec.GPUArch, row.BestFrac), *sched)
	if f := res.Faults; f != nil {
		st := f.Injected
		fmt.Printf("faults: spec %s — %d injected (capfail %d, clamp %d, throttle %d, dropout %d, task %d); cap retries %d, task retries %d\n",
			f.Spec, st.Total(), st.CapFailures, st.CapClamps, st.Throttles, st.Dropouts, st.TaskFaults,
			f.CapRetries, f.TaskRetries)
		if d := res.Degraded; d != nil {
			fmt.Printf("degraded: %d worker(s) evicted, surviving plan %s\n", len(d.Evictions), d.Plan)
		}
		fmt.Println()
	}
	rep := spantrace.Analyze(res.Trace, *topK)
	if err := rep.Write(os.Stdout); err != nil {
		return err
	}

	if *chromePath != "" {
		f, err := os.Create(*chromePath)
		if err != nil {
			return err
		}
		err = spantrace.WriteChrome(f, res.Trace)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		n, err := validateChrome(*chromePath)
		if err != nil {
			return fmt.Errorf("chrome trace %s failed parse-back: %w", *chromePath, err)
		}
		fmt.Printf("\nchrome trace written to %s (%d events, parse-back OK)\n", *chromePath, n)
	}
	if *foldedPath != "" {
		f, err := os.Create(*foldedPath)
		if err != nil {
			return err
		}
		err = spantrace.WriteFolded(f, res.Trace)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("folded stacks written to %s\n", *foldedPath)
	}
	if *rollupPath != "" {
		// The single-cell counterpart of capbench's -agg-dir stream:
		// deliver the one rollup through the same sink the sweep uses, so
		// the line format matches and downstream mergers need one parser.
		sink, err := agg.NewJSONLSink(*rollupPath)
		if err != nil {
			return err
		}
		err = sink.Emit([]agg.CellRollup{core.BuildRollup(cfg, res)})
		if cerr := sink.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("cell rollup written to %s\n", *rollupPath)
	}
	return nil
}

// validateChrome re-reads a written trace and decodes it as a Chrome
// event array, returning the event count.
func validateChrome(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var events []trace.ChromeEvent
	if err := json.Unmarshal(data, &events); err != nil {
		return 0, err
	}
	if len(events) == 0 {
		return 0, fmt.Errorf("no events")
	}
	return len(events), nil
}

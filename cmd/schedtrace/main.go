// Command schedtrace runs one workload/plan configuration and dumps the
// scheduling internals: per-worker statistics, per-codelet counts, the
// calibrated performance-model table and (optionally) a Gantt CSV.
//
// Usage:
//
//	schedtrace [-platform 32-AMD-4-A100] [-op gemm|potrf] [-precision double]
//	           [-plan HHBB] [-scheduler dmdas] [-scale 4] [-gantt out.csv]
//	           [-power power.csv] [-chrome trace.json] [-model]
//	           [-decisions decisions.json] [-telemetry]
//
// The analyze subcommand runs the causal span tracer instead: critical
// path with per-power-state composition, per-worker idle breakdown, top
// energy task types and the per-device energy reconciliation, plus
// Chrome-trace (with causal flow arrows) and folded-stack exports:
//
//	schedtrace analyze [-platform ...] [-op ...] [-precision ...] [-plan HHBB]
//	                   [-scheduler dmdas] [-scale 4] [-top 10] [-seed 0]
//	                   [-faults capfail=0.3,dropout=1] [-chrome trace.json]
//	                   [-folded stacks.txt]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/chameleon"
	"repro/internal/core"
	"repro/internal/perfmodel"
	"repro/internal/platform"
	"repro/internal/powercap"
	"repro/internal/prec"
	"repro/internal/sigctx"
	"repro/internal/starpu"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/units"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "analyze" {
		if err := runAnalyze(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "schedtrace analyze:", err)
			os.Exit(1)
		}
		return
	}
	platName := flag.String("platform", platform.FourA100Name, "platform name")
	opName := flag.String("op", "gemm", "gemm or potrf")
	precName := flag.String("precision", "double", "single or double")
	planStr := flag.String("plan", "", "power plan (default all-H)")
	sched := flag.String("scheduler", "dmdas", "scheduling policy")
	scale := flag.Int("scale", 4, "divide the Table II matrix order by this factor")
	ganttPath := flag.String("gantt", "", "write a Gantt CSV to this path")
	powerPath := flag.String("power", "", "write a per-device power-timeline CSV to this path")
	chromePath := flag.String("chrome", "", "write a chrome://tracing / Perfetto JSON trace to this path")
	dumpModel := flag.Bool("model", false, "dump the calibrated performance-model table")
	decPath := flag.String("decisions", "", "write the scheduler decision log as JSON to this path")
	telem := flag.Bool("telemetry", false, "print the sampled power/energy and decision-log summaries")
	metricsAddr := flag.String("metrics-addr", "",
		"serve live telemetry on this address (/metrics, /timeseries.json, /decisions.json, /debug/pprof/)")
	hold := flag.Duration("hold", 0, "keep the telemetry endpoint open this long after the run finishes")
	flag.Parse()
	if *hold > 0 && *metricsAddr == "" {
		fmt.Fprintln(os.Stderr, "schedtrace: -hold requires -metrics-addr (there is no telemetry endpoint to hold open)")
		os.Exit(2)
	}

	// First SIGINT/SIGTERM cuts the run short at the next interruptible
	// point (the -hold window); a second one force-exits 130 immediately,
	// even if an artifact write has wedged.
	ctx, stop := sigctx.New(context.Background(), nil)
	defer stop()

	if err := run(ctx, *platName, *opName, *precName, *planStr, *sched, *scale, *ganttPath, *powerPath, *chromePath, *decPath, *metricsAddr, *dumpModel, *telem, *hold); err != nil {
		fmt.Fprintln(os.Stderr, "schedtrace:", err)
		os.Exit(1)
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "schedtrace: interrupted")
		os.Exit(130)
	}
}

func run(ctx context.Context, platName, opName, precName, planStr, sched string, scale int, ganttPath, powerPath, chromePath, decPath, metricsAddr string, dumpModel, telem bool, hold time.Duration) error {
	op := core.GEMM
	if opName == "potrf" {
		op = core.POTRF
	} else if opName != "gemm" {
		return fmt.Errorf("unknown op %q", opName)
	}
	p := prec.Double
	if precName == "single" {
		p = prec.Single
	} else if precName != "double" {
		return fmt.Errorf("unknown precision %q", precName)
	}
	row, err := core.LookupTableII(platName, op, p)
	if err != nil {
		return err
	}
	if scale > 1 {
		nt := row.N / row.NB / scale
		if nt < 2 {
			nt = 2
		}
		row.N = nt * row.NB
	}
	spec, err := platform.SpecByName(platName)
	if err != nil {
		return err
	}
	plan := powercap.MustParsePlan(allHigh(spec.GPUCount))
	if planStr != "" {
		plan, err = powercap.ParsePlan(planStr)
		if err != nil {
			return err
		}
	}

	// Build the platform directly (rather than core.Run) so the runtime
	// and the model stay inspectable after the run.
	plat, err := platform.New(spec)
	if err != nil {
		return err
	}
	if err := plat.SetGPUCaps(plan.Caps(spec.GPUArch, row.BestFrac)); err != nil {
		return err
	}
	model := perfmodel.NewHistory()
	calRT, err := starpu.New(plat, starpu.Config{Scheduler: "calibrate", Model: model})
	if err != nil {
		return err
	}
	if err := submit(calRT, row, min(row.N/row.NB, 4)*row.NB); err != nil {
		return err
	}
	if _, err := calRT.Run(); err != nil {
		return err
	}

	if powerPath != "" {
		plat.EnablePowerTraces()
	}
	// Instrument the measured pass when the decision log or telemetry
	// summaries were asked for.
	var collector *telemetry.Collector
	rtCfg := starpu.Config{Scheduler: sched, Model: model}
	if decPath != "" || telem || metricsAddr != "" {
		collector = telemetry.NewCollector()
		collector.InstallModelHook(model)
		rtCfg.Observer = collector
	}
	var srv *telemetry.Server
	if metricsAddr != "" {
		stopRuntime := telemetry.StartRuntimeMetrics(collector.Registry, 0)
		defer stopRuntime()
		srv, err = telemetry.Serve(metricsAddr, collector)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry: serving /metrics and /debug/pprof/ on http://%s\n", srv.Addr())
	}
	rt, err := starpu.New(plat, rtCfg)
	if err != nil {
		return err
	}
	if err := submit(rt, row, row.N); err != nil {
		return err
	}
	if collector != nil {
		if _, err := collector.AttachRun(plat, rt, telemetry.SamplerConfig{}); err != nil {
			return err
		}
	}
	makespan, err := rt.Run()
	if err != nil {
		return err
	}

	flops := op.Flops(row.N)
	fmt.Printf("%s on %s, plan %s, scheduler %s\n", row.Workload(), platName,
		powercap.Describe(plan, spec.GPUArch, row.BestFrac), sched)
	fmt.Printf("makespan %v, %v\n\n", makespan, units.Rate(flops, makespan))
	fmt.Print(trace.Collect(rt).String())
	cp := trace.ComputeCriticalPath(rt)
	fmt.Printf("critical path: %d tasks, %v (%.0f%% of makespan), %.0f%% of it on CPUs\n",
		len(cp.Tasks), cp.Length, cp.Bound*100, cp.CPUShare()*100)
	if rt.MemoryStats().Evictions > 0 {
		fmt.Printf("device memory: %d evictions, %v written back\n",
			rt.MemoryStats().Evictions, rt.MemoryStats().WritebackBytes)
	}

	if dumpModel {
		fmt.Println("\nperformance model:")
		fmt.Print(model.Dump())
	}
	if ganttPath != "" {
		f, err := os.Create(ganttPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteGantt(f, rt); err != nil {
			return err
		}
		fmt.Printf("\ngantt written to %s (%d tasks)\n", ganttPath, len(rt.Tasks()))
	}
	if powerPath != "" {
		f, err := os.Create(powerPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WritePowerTrace(f, plat.PowerTraces()); err != nil {
			return err
		}
		fmt.Printf("power timeline written to %s\n", powerPath)
		// With traces available, the NVML thermal sensor works: report
		// the per-GPU temperature at the end of the run.
		n, _ := plat.NVML.DeviceGetCount()
		fmt.Print("final temperatures:")
		for i := 0; i < n; i++ {
			h, _ := plat.NVML.DeviceGetHandleByIndex(i)
			if temp, ret := h.GetTemperature(); ret.Error() == nil {
				fmt.Printf(" GPU%d=%d°C", i, temp)
			}
		}
		fmt.Println()
	}
	if chromePath != "" {
		f, err := os.Create(chromePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteChromeTrace(f, rt); err != nil {
			return err
		}
		fmt.Printf("chrome trace written to %s (open in chrome://tracing or ui.perfetto.dev)\n", chromePath)
	}
	if telem && collector != nil {
		fmt.Println()
		if s := collector.Sampler(); s != nil {
			s.SummaryTable().Write(os.Stdout)
			fmt.Println()
		}
		collector.Decisions.SummaryTable().Write(os.Stdout)
	}
	if decPath != "" && collector != nil {
		f, err := os.Create(decPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := collector.Decisions.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("\ndecision log written to %s (%d decisions, %d dropped)\n",
			decPath, collector.Decisions.Total(), collector.Decisions.Dropped())
	}
	if srv != nil && hold > 0 {
		fmt.Fprintf(os.Stderr, "telemetry: holding endpoint open for %v (scrape http://%s/metrics)\n", hold, srv.Addr())
		select {
		case <-time.After(hold):
		case <-ctx.Done():
		}
	}
	return nil
}

func submit(rt *starpu.Runtime, row core.TableIIRow, n int) error {
	switch row.Precision {
	case prec.Single:
		return submitTyped[float32](rt, row, n)
	default:
		return submitTyped[float64](rt, row, n)
	}
}

func submitTyped[T interface{ ~float32 | ~float64 }](rt *starpu.Runtime, row core.TableIIRow, n int) error {
	if row.Op == core.POTRF {
		d, err := chameleon.NewDesc[T](rt, n, row.NB, false)
		if err != nil {
			return err
		}
		return chameleon.Potrf(rt, d)
	}
	a, err := chameleon.NewDesc[T](rt, n, row.NB, false)
	if err != nil {
		return err
	}
	b, err := chameleon.NewDesc[T](rt, n, row.NB, false)
	if err != nil {
		return err
	}
	c, err := chameleon.NewDesc[T](rt, n, row.NB, false)
	if err != nil {
		return err
	}
	return chameleon.Gemm[T](rt, 1, a, b, 0, c)
}

func allHigh(n int) string {
	s := make([]byte, n)
	for i := range s {
		s[i] = 'H'
	}
	return string(s)
}

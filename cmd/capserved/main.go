// Command capserved is the sweep coordinator: it loads a grid job,
// shards its cells into leases and dispatches them to capworker
// processes over HTTP, supervising a local worker fleet if asked.
// The same endpoint serves the dispatch protocol, job submission and
// the full telemetry plane (/metrics, /progress, /events, /surface,
// /healthz, /v1/state).
//
// One-shot mode (the capbench replacement for sharded sweeps):
//
//	capserved -experiment grid -platform 24-Intel-2-V100 -scale 2 \
//	          -workers 3 -checkpoint ckpt/ -agg-dir out/
//
// runs the job across three supervised capworker children and exits
// when every cell is terminal.  Service mode (no -experiment) stays
// up and takes jobs on POST /v1/submit — capbench's -submit flag
// posts there.  SIGTERM/SIGINT drains gracefully: in-flight leases
// resolve, the job is sealed so a restart resumes the remainder; a
// second signal force-exits 130 immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/sigctx"
	"repro/internal/sweepd"
	"repro/internal/telemetry"
)

func main() {
	fs := flag.NewFlagSet("capserved", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:0", "dispatch + telemetry address (host:port; :0 picks a free port)")
	checkpoint := fs.String("checkpoint", "", "base directory for per-job checkpoint journals (shared with workers; empty = no crash safety)")
	aggDir := fs.String("agg-dir", "", "base directory for per-job artifacts (surface.json, digests.json, jobreport.json, events.jsonl)")
	workers := fs.Int("workers", 0, "supervise this many local capworker processes (0 = external workers only)")
	workerBin := fs.String("worker-bin", "", "capworker binary for the supervised fleet (default: next to this binary, then $PATH)")
	serial := fs.Bool("serial", false, "run one in-process worker instead of spawning processes (baseline/debug mode)")

	maxQueue := fs.Int("max-queue", 0, "bound on queued jobs; a full queue answers 429 + Retry-After (0 = default 8)")
	tenantQuota := fs.Int("tenant-quota", 0, "bound on queued+active jobs per named tenant (0 = default 4)")
	netFaults := fs.String("net-faults", "", "wire fault spec injected into supervised workers (faults.ParseNetSpec syntax, e.g. drop=0.05,dup=0.05,err=0.05,delay=20ms)")
	netSeed := fs.Int64("net-seed", 1, "root seed for the wire fault injector (per-worker seeds derive from it)")

	experiment := fs.String("experiment", "", "one-shot job: grid, fig3 or fig4 (empty = service mode, wait for /v1/submit)")
	name := fs.String("name", "", "one-shot job name (labels artifacts; default: the experiment)")
	platformName := fs.String("platform", "all", "one-shot job platform filter")
	scale := fs.Int("scale", 1, "one-shot job scale divisor")
	seed := fs.Int64("seed", 0, "one-shot job root seed")
	scheduler := fs.String("scheduler", "", "one-shot job scheduler override")
	faultsSpec := fs.String("faults", "", "one-shot job fault-injection spec")
	poison := fs.String("poison", "", "chaos: crash any worker that leases a cell whose key contains this substring")

	leaseTTL := fs.Duration("lease-ttl", 0, "lease time-to-live (0 = default)")
	heartbeat := fs.Duration("heartbeat", 0, "heartbeat interval advertised to workers (0 = TTL/3)")
	workerTimeout := fs.Duration("worker-timeout", 0, "declare a silent worker lost after this long (0 = 2×TTL)")
	stealAfter := fs.Duration("steal-after", 0, "work-stealing floor: steal a straggler lease no earlier than this (0 = default)")
	maxFailures := fs.Int("max-failures", 0, "quarantine a cell after this many contained failures (0 = default 3)")
	killBudget := fs.Int("kill-budget", 0, "quarantine a cell after it loses this many workers (0 = default 3)")
	cellTimeout := fs.Duration("cell-timeout", 0, "per-cell watchdog passed to supervised workers (0 = off)")
	maxLeases := fs.Int("max-leases", 1, "leases each supervised worker holds at once")
	drainGrace := fs.Duration("drain-grace", 30*time.Second, "how long a drain waits for in-flight leases before sealing the job")
	fs.Parse(os.Args[1:])

	if *serial && *workers > 0 {
		fmt.Fprintln(os.Stderr, "capserved: -serial and -workers are mutually exclusive")
		os.Exit(2)
	}

	// First SIGINT/SIGTERM drains: leases resolve, the job seals, a
	// restart resumes the remainder.  A second signal force-exits 130.
	ctx, stop := sigctx.New(context.Background(), nil)
	defer stop()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if _, err := faults.ParseNetSpec(*netFaults); err != nil {
		fmt.Fprintf(os.Stderr, "capserved: -net-faults: %v\n", err)
		os.Exit(2)
	}
	col := telemetry.NewCollector()
	coord, err := sweepd.New(sweepd.Config{
		CheckpointDir: *checkpoint,
		AggDir:        *aggDir,
		Lease: sweepd.LeaseConfig{
			TTL:         *leaseTTL,
			MaxFailures: *maxFailures,
			KillBudget:  *killBudget,
			StealAfter:  *stealAfter,
		},
		MaxQueue:       *maxQueue,
		TenantQuota:    *tenantQuota,
		HeartbeatEvery: *heartbeat,
		WorkerTimeout:  *workerTimeout,
		Collector:      col,
		Logf:           logf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "capserved: %v\n", err)
		os.Exit(1)
	}

	// Replay the durable state from a previous life before serving:
	// queued and mid-flight jobs re-enter the queue, terminal jobs come
	// back as queryable records, burned budgets are restored.
	if n, rerr := coord.Recover(); rerr != nil {
		fmt.Fprintf(os.Stderr, "capserved: recover: %v\n", rerr)
		os.Exit(1)
	} else if n > 0 {
		fmt.Fprintf(os.Stderr, "capserved: recovered %d job(s) from the state journal\n", n)
	}

	// The scanner and tracker must outlive the first signal — they drive
	// lease expiry during the drain — so they get their own context.
	srvCtx, srvCancel := context.WithCancel(context.Background())
	defer srvCancel()
	coord.Start(srvCtx)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "capserved: listen: %v\n", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: coord.Handler()}
	go srv.Serve(ln)
	url := "http://" + ln.Addr().String()
	fmt.Fprintf(os.Stderr, "capserved: serving dispatch, /v1/submit, /healthz, /metrics, /progress and /events on %s\n", url)

	var eventLog *obs.FileSink
	if *aggDir != "" {
		if err := os.MkdirAll(*aggDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "capserved: -agg-dir: %v\n", err)
			os.Exit(1)
		}
		eventLog, err = obs.NewFileSink(filepath.Join(*aggDir, "events.jsonl"), coord.Bus())
		if err != nil {
			fmt.Fprintf(os.Stderr, "capserved: events log: %v\n", err)
			os.Exit(1)
		}
	}

	// The worker fleet: supervised child processes, or one in-process
	// worker in -serial mode.
	fleetDone := make(chan struct{})
	fleetCtx, fleetCancel := context.WithCancel(context.Background())
	defer fleetCancel()
	switch {
	case *serial:
		w, werr := sweepd.NewWorker(sweepd.WorkerConfig{
			ID: "w0", Coordinator: url,
			MaxLeases: *maxLeases, CellTimeout: *cellTimeout, Logf: logf,
			Client: workerClient("w0", *netFaults, *netSeed),
		})
		if werr != nil {
			fmt.Fprintf(os.Stderr, "capserved: %v\n", werr)
			os.Exit(1)
		}
		go func() {
			defer close(fleetDone)
			if rerr := w.Run(fleetCtx); rerr != nil && fleetCtx.Err() == nil {
				fmt.Fprintf(os.Stderr, "capserved: serial worker: %v\n", rerr)
			}
		}()
	case *workers > 0:
		bin, berr := findWorkerBin(*workerBin)
		if berr != nil {
			fmt.Fprintf(os.Stderr, "capserved: %v\n", berr)
			os.Exit(1)
		}
		sup, serr := sweepd.NewSupervisor(sweepd.SupervisorConfig{
			Workers: *workers,
			Spawn: func(slot int, id string) *exec.Cmd {
				args := []string{
					"-id", id, "-coordinator", url,
					"-max-leases", fmt.Sprint(*maxLeases),
					"-cell-timeout", cellTimeout.String(),
				}
				if *netFaults != "" {
					args = append(args, "-net-faults", *netFaults, "-net-seed", fmt.Sprint(*netSeed))
				}
				cmd := exec.Command(bin, args...)
				cmd.Stdout = os.Stdout
				cmd.Stderr = os.Stderr
				return cmd
			},
			OnExit: coord.WorkerExited,
			Logf:   logf,
		})
		if serr != nil {
			fmt.Fprintf(os.Stderr, "capserved: %v\n", serr)
			os.Exit(1)
		}
		go func() { defer close(fleetDone); sup.Run(fleetCtx) }()
	default:
		close(fleetDone)
	}

	exit := 0
	if *experiment != "" {
		// One-shot: submit the declared job and wait for it to finish (or
		// for a drain signal).
		spec := sweepd.JobSpec{
			Name: *name, Experiment: *experiment, Platform: *platformName,
			Scale: *scale, Seed: *seed, Scheduler: *scheduler,
			Faults: *faultsSpec, Poison: *poison,
		}
		job, jerr := coord.Submit(spec)
		if jerr != nil {
			fmt.Fprintf(os.Stderr, "capserved: submit: %v\n", jerr)
			os.Exit(1)
		}
		select {
		case <-job.Done():
		case <-ctx.Done():
			drain(coord, *drainGrace)
			exit = 130
		}
		if rep := job.Report(); rep != nil {
			fmt.Fprintf(os.Stderr, "capserved: job %s: %d/%d cells done (%d resumed, %d stolen, %d expired)\n",
				rep.JobID, rep.Done, rep.Cells, rep.Resumed, rep.Stolen, rep.Expired)
			if rep.Degraded {
				fmt.Fprintf(os.Stderr, "capserved: DEGRADED: %d cell(s) quarantined as poisoned\n", len(rep.Quarantined))
			}
			if rep.Drained {
				fmt.Fprintf(os.Stderr, "capserved: drained before completion — re-run with the same -checkpoint to resume\n")
			}
			if job.ArtifactDir() != "" {
				fmt.Fprintf(os.Stderr, "capserved: artifacts in %s\n", job.ArtifactDir())
			}
		}
	} else {
		// Service mode: take jobs on /v1/submit until told to stop.
		<-ctx.Done()
		drain(coord, *drainGrace)
		exit = 130
	}

	// Wind the fleet down (SIGTERM, grace, SIGKILL via the supervisor),
	// then the HTTP plane.
	fleetCancel()
	<-fleetDone
	srv.Close()
	if eventLog != nil {
		eventLog.Close()
	}
	// Release journals without sealing: queued jobs stay queued in the
	// state journal and resume on the next life.
	coord.Close()
	os.Exit(exit)
}

// workerClient builds the serial worker's HTTP client, wrapping the
// transport with the wire fault injector when a spec is set (the same
// derivation capworker uses for its own seed).
func workerClient(id, spec string, seed int64) *http.Client {
	ns, err := faults.ParseNetSpec(spec)
	if err != nil || ns.Zero() {
		return nil // worker default
	}
	return &http.Client{
		Timeout:   30 * time.Second,
		Transport: faults.NewNetInjector(ns, sweepd.DeriveNetSeed(seed, id), nil),
	}
}

// drain seals the active job gracefully, bounded by the grace period.
func drain(coord *sweepd.Coordinator, grace time.Duration) {
	fmt.Fprintln(os.Stderr, "capserved: draining — waiting for in-flight leases (second signal force-exits)")
	dctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	coord.Drain(dctx)
}

// findWorkerBin locates the capworker binary: explicit flag, then next
// to this executable, then $PATH.
func findWorkerBin(explicit string) (string, error) {
	if explicit != "" {
		return explicit, nil
	}
	if self, err := os.Executable(); err == nil {
		cand := filepath.Join(filepath.Dir(self), "capworker")
		if _, err := os.Stat(cand); err == nil {
			return cand, nil
		}
	}
	if path, err := exec.LookPath("capworker"); err == nil {
		return path, nil
	}
	return "", fmt.Errorf("capworker binary not found (build it, or point -worker-bin at it)")
}

// Command gpucurve inspects the fitted GPU power/performance model: for
// an architecture and precision it prints the DVFS operating point,
// throughput, power and energy efficiency across the cap range, plus
// the fitted curve parameters — the raw material behind Fig. 1.
//
// Usage:
//
//	gpucurve [-arch A100-SXM4-40GB] [-precision double] [-size 5120] [-step 2]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gpu"
	"repro/internal/prec"
	"repro/internal/report"
	"repro/internal/units"
)

func main() {
	archName := flag.String("arch", gpu.A100SXM4Name, "GPU architecture name")
	precName := flag.String("precision", "double", "single or double")
	size := flag.Int("size", 5120, "square GEMM size determining occupancy")
	stepPct := flag.Float64("step", 2, "cap sweep step in percent of TDP")
	csv := flag.Bool("csv", false, "emit CSV")
	flag.Parse()

	arch, err := gpu.Lookup(*archName)
	if err != nil {
		fatal(err)
	}
	var p prec.Precision
	switch *precName {
	case "single":
		p = prec.Single
	case "double":
		p = prec.Double
	default:
		fatal(fmt.Errorf("unknown precision %q (single or double)", *precName))
	}
	curve := arch.Curve(p)
	work := units.Flops(2 * float64(*size) * float64(*size) * float64(*size))
	occ := arch.Occupancy(work)

	fmt.Printf("%s, %s precision — fitted curve: draw=%.0f W sigma=%.3f alpha=%.3f beta=%.1f xmin=%.3f peak=%v\n",
		arch.Name, p, float64(curve.Draw), curve.Sigma, curve.Alpha, curve.Beta, curve.XMin, curve.PeakRate)
	fmt.Printf("kernel: %dx%d gemm, %.3g flop, occupancy %.3f\n\n", *size, *size, float64(work), occ)

	tbl := report.NewTable("", "cap_W", "cap_%TDP", "clock_%", "duty", "Gflop/s", "power_W", "Gflop/s/W", "throttled")
	step := float64(arch.TDP) * *stepPct / 100
	bestCap, bestEff := units.Watts(0), 0.0
	for cap := float64(arch.MinPower); cap <= float64(arch.TDP)+step/2; cap += step {
		op := curve.Operate(units.Watts(cap), occ)
		eff := units.GFlopsPerWatt(op.Rate, op.Power)
		tbl.AddRow(cap, cap/float64(arch.TDP)*100, op.X*100, op.Duty,
			float64(op.Rate)/units.Giga, float64(op.Power), eff, fmt.Sprintf("%v", op.Throttled))
		if eff > bestEff {
			bestEff, bestCap = eff, units.Watts(cap)
		}
	}
	if *csv {
		if err := tbl.WriteCSV(os.Stdout); err != nil {
			fatal(err)
		}
	} else if err := tbl.Write(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Printf("\nbest cap: %v (%.0f%% of TDP) at %.1f Gflop/s/W\n",
		bestCap, float64(bestCap)/float64(arch.TDP)*100, bestEff)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gpucurve:", err)
	os.Exit(1)
}

// Command capworker is the sweep cell executor: it joins a capserved
// coordinator, expands the job independently (the spec is declared,
// not shipped — the CheckpointKey on each lease guards against
// version skew), executes leased cells through the guarded executor
// with its own checkpoint journal namespace, heartbeats per lease and
// reports results as checkpoint-codec bytes.
//
//	capworker -coordinator http://host:port [-id w0] [-max-leases 1]
//	          [-cell-timeout 0]
//
// The process is expendable by design: SIGKILL it mid-cell and the
// coordinator re-leases its cells to another worker byte-identically.
// SIGTERM/SIGINT stop it between cells (the in-flight lease expires
// and re-runs elsewhere); a second signal force-exits 130.  Leasing a
// poisoned cell crashes the process with status 3 — that is the chaos
// harness's simulated hard fault, contained by the coordinator's kill
// budget.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/faults"
	"repro/internal/sigctx"
	"repro/internal/sweepd"
)

func main() {
	fs := flag.NewFlagSet("capworker", flag.ExitOnError)
	id := fs.String("id", "", "worker identity: lease holder and journal writer namespace (default w-<pid>)")
	coordinator := fs.String("coordinator", "", "coordinator base URL (http://host:port)")
	maxLeases := fs.Int("max-leases", 1, "cells held at once")
	cellTimeout := fs.Duration("cell-timeout", 0, "per-cell watchdog (0 = off)")
	netFaults := fs.String("net-faults", "", "wire fault spec on every coordinator call (faults.ParseNetSpec syntax)")
	netSeed := fs.Int64("net-seed", 1, "root seed for the wire fault injector (this worker derives its own from it)")
	fs.Parse(os.Args[1:])

	if *id == "" {
		*id = fmt.Sprintf("w-%d", os.Getpid())
	}
	ctx, stop := sigctx.New(context.Background(), nil)
	defer stop()

	// The wire fault layer sits in the HTTP transport, under the
	// protocol: every retry, duplicate and dropped reply the spec
	// injects exercises the same idempotency the real network relies on.
	var client *http.Client
	if *netFaults != "" {
		ns, err := faults.ParseNetSpec(*netFaults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "capworker: -net-faults: %v\n", err)
			os.Exit(2)
		}
		if !ns.Zero() {
			client = &http.Client{
				Timeout:   30 * time.Second,
				Transport: faults.NewNetInjector(ns, sweepd.DeriveNetSeed(*netSeed, *id), nil),
			}
		}
	}

	w, err := sweepd.NewWorker(sweepd.WorkerConfig{
		ID:          *id,
		Coordinator: *coordinator,
		MaxLeases:   *maxLeases,
		CellTimeout: *cellTimeout,
		Client:      client,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "capworker: %v\n", err)
		os.Exit(2)
	}
	start := time.Now()
	err = w.Run(ctx)
	switch {
	case ctx.Err() != nil:
		fmt.Fprintf(os.Stderr, "capworker: %s: interrupted after %v — in-flight leases will expire and re-run\n",
			*id, time.Since(start).Round(time.Millisecond))
		os.Exit(130)
	case err != nil:
		fmt.Fprintf(os.Stderr, "capworker: %s: %v\n", *id, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "capworker: %s: drained cleanly after %v\n", *id, time.Since(start).Round(time.Millisecond))
}

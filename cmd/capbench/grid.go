package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/units"
)

// runGrid reproduces the full evaluation grid — every Table II row
// (platform × operation × precision, optionally filtered by -platform)
// crossed with the canonical plan set — through the parallel executor.
// Each row's simulation is seeded by CellSeed(-seed, row identity), so
// the output is byte-identical at any -parallel value.
func runGrid(o *options) error {
	platforms, err := platformsFor(o)
	if err != nil {
		return err
	}
	keep := make(map[string]bool, len(platforms))
	for _, p := range platforms {
		keep[p] = true
	}
	var rows []core.TableIIRow
	for _, r := range core.TableII {
		if keep[r.Platform] {
			rows = append(rows, scaledRow(r, o.scale))
		}
	}

	sweep := o.sweepOpts(nil)
	res, err := core.RunGrid(core.GridSpec{
		Rows:     rows,
		Sweep:    sweep,
		RootSeed: o.seed,
	}, o.popt())
	if err != nil {
		return err
	}
	if err := writeSweepTraces(o, rows, sweep, o.seed, res.Results); err != nil {
		return err
	}
	if err := emitFaultSummary(o, rows, res.Results); err != nil {
		return err
	}

	// Per-row best plan plus the whole grid in one table: the summary
	// the paper's Figs. 3/4 distil into prose.
	tbl := report.NewTable(
		fmt.Sprintf("Grid — %d sweeps × canonical plans (%s, root seed %d)", len(rows), schedName(o), o.seed),
		"platform", "workload", "best plan", "best Gflop/s/W", "Δeff %", "Δperf %", "default Gflop/s/W")
	for i, row := range res.Rows {
		best := res.Results[i][0]
		var def core.PlanResult
		for _, pr := range res.Results[i] {
			if pr.Result.Efficiency > best.Result.Efficiency {
				best = pr
			}
			if pr.Plan.AllHigh() {
				def = pr
			}
		}
		tbl.AddRow(row.Platform, row.Workload().String(), best.Plan.String(),
			best.Result.Efficiency, best.Delta.EffGainPct, best.Delta.PerfPct,
			def.Result.Efficiency)
	}
	if err := emit(o, tbl); err != nil {
		return err
	}
	fmt.Println()

	// Full per-plan detail, one table per row, enumeration order.
	for i, row := range res.Rows {
		tbl := report.NewTable(
			fmt.Sprintf("  %s on %s", row.Workload(), row.Platform),
			"plan", "perf Δ%", "energy Δ%", "Gflop/s/W", "Gflop/s")
		for _, pr := range res.Results[i] {
			tbl.AddRow(pr.Plan.String(), pr.Delta.PerfPct, pr.Delta.EnergyPct,
				pr.Result.Efficiency, float64(pr.Result.Rate)/units.Giga)
		}
		if err := emit(o, tbl); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

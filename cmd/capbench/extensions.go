package main

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dyncap"
	"repro/internal/platform"
	"repro/internal/powercap"
	"repro/internal/prec"
	"repro/internal/report"
	"repro/internal/units"
)

// runAutoPlan demonstrates the automatic plan search the paper's
// conclusion calls for: the most efficient plan within a slowdown
// budget, plus the Pareto frontier.
func runAutoPlan(o *options) error {
	platforms, err := platformsFor(o)
	if err != nil {
		return err
	}
	for _, plat := range platforms {
		row, err := core.LookupTableII(plat, core.GEMM, prec.Double)
		if err != nil {
			return err
		}
		row = scaledRow(row, o.scale)
		res, err := core.AutoPlan(row, o.budget, core.SweepOptions{Scheduler: o.scheduler, Telemetry: o.telem})
		if err != nil {
			return err
		}
		fmt.Printf("AutoPlan on %s (%s, budget %.0f%% slowdown): chose %s — eff %.1f Gflop/s/W (%+.1f%%), perf %+.1f%%\n",
			plat, row.Workload(), o.budget, res.Chosen.Plan,
			res.Chosen.Result.Efficiency, res.Chosen.Delta.EffGainPct, res.Chosen.Delta.PerfPct)
		tbl := report.NewTable("  Pareto frontier (no plan is both faster and more efficient)",
			"plan", "Gflop/s", "Gflop/s/W", "perf Δ%", "eff Δ%")
		for _, f := range res.Frontier {
			tbl.AddRow(f.Plan.String(), float64(f.Result.Rate)/units.Giga,
				f.Result.Efficiency, f.Delta.PerfPct, f.Delta.EffGainPct)
		}
		if err := emit(o, tbl); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

// runAblation quantifies the design choices DESIGN.md calls out:
// scheduler policy, stale performance models after a cap change, and
// the transfer model.
func runAblation(o *options) error {
	row, err := core.LookupTableII(platform.FourA100Name, core.GEMM, prec.Double)
	if err != nil {
		return err
	}
	row = scaledRow(row, o.scale)
	spec, err := specFor(row.Platform)
	if err != nil {
		return err
	}
	plan := powercap.MustParsePlan("HHBB")

	// 1. Scheduler ablation under an unbalanced plan: the dm family
	// should exploit the heterogeneity, the baselines should not.
	tbl := report.NewTable(
		fmt.Sprintf("Ablation — scheduler policy under %s (%s on %s)", plan, row.Workload(), row.Platform),
		"scheduler", "Gflop/s", "Gflop/s/W", "GPU task share %")
	for _, sched := range []string{"eager", "random", "ws", "dm", "dmda", "dmdas", "dmdae"} {
		res, err := core.Run(core.Config{
			Spec: spec, Workload: row.Workload(), Plan: plan,
			BestFrac: row.BestFrac, Scheduler: sched, Telemetry: o.telem,
		})
		if err != nil {
			return fmt.Errorf("scheduler %s: %w", sched, err)
		}
		tbl.AddRow(sched, float64(res.Rate)/units.Giga, res.Efficiency, res.Stats.GPUShare*100)
	}
	if err := emit(o, tbl); err != nil {
		return err
	}
	fmt.Println()

	// 2. Calibration ablation: the paper's protocol (recalibrate after
	// every cap change; our worker classes embed the cap, enforcing it)
	// against the counterfactual where models calibrated at default
	// power are reused under the caps — the scheduler then plans with
	// estimates that are wrong on every capped GPU.  An asymmetric
	// B-heavy plan makes the misplacement visible.
	stalePlan := powercap.MustParsePlan("HBBB")
	tbl = report.NewTable(
		fmt.Sprintf("Ablation — performance-model calibration after the cap change (%s)", stalePlan),
		"models", "Gflop/s", "Gflop/s/W")
	for _, stale := range []bool{false, true} {
		res, err := core.Run(core.Config{
			Spec: spec, Workload: row.Workload(), Plan: stalePlan,
			BestFrac: row.BestFrac, StaleModels: stale, Telemetry: o.telem,
		})
		if err != nil {
			return err
		}
		label := "recalibrated (paper protocol)"
		if stale {
			label = "stale (calibrated uncapped)"
		}
		tbl.AddRow(label, float64(res.Rate)/units.Giga, res.Efficiency)
	}
	if err := emit(o, tbl); err != nil {
		return err
	}
	fmt.Println()

	// 3. Transfer-model ablation via the scheduler: dm ignores data
	// placement, dmda accounts for it.
	tbl = report.NewTable("Ablation — data-aware placement (dm vs dmda vs dmdas)",
		"scheduler", "Gflop/s", "data moved (GB)")
	for _, sched := range []string{"dm", "dmda", "dmdas"} {
		res, err := core.Run(core.Config{
			Spec: spec, Workload: row.Workload(), Plan: plan,
			BestFrac: row.BestFrac, Scheduler: sched, Telemetry: o.telem,
		})
		if err != nil {
			return err
		}
		tbl.AddRow(sched, float64(res.Rate)/units.Giga, float64(res.Stats.TransferBytes)/units.Giga)
	}
	if err := emit(o, tbl); err != nil {
		return err
	}
	fmt.Println()

	// 4. Dynamic capping (future work): the online controller against
	// the static default and the static best plan.  The controller needs
	// run time to converge, so this section uses a longer workload.
	long := row.Workload()
	long.N = long.NB * 16
	base, err := core.Run(core.Config{Spec: spec, Workload: long, BestFrac: row.BestFrac, Telemetry: o.telem})
	if err != nil {
		return err
	}
	allB, err := core.Run(core.Config{
		Spec: spec, Workload: long, BestFrac: row.BestFrac,
		Plan:      powercap.MustParsePlan(strings.Repeat("B", spec.GPUCount)),
		Telemetry: o.telem,
	})
	if err != nil {
		return err
	}
	dyn, ctl, err := core.RunDynamic(core.Config{Spec: spec, Workload: long, BestFrac: row.BestFrac, Telemetry: o.telem},
		dyncap.DefaultConfig())
	if err != nil {
		return err
	}
	tbl = report.NewTable("Extension — online cap controller vs static plans",
		"configuration", "Gflop/s", "Gflop/s/W", "eff vs default %")
	for _, r := range []*core.Result{base, allB, dyn} {
		tbl.AddRow(r.Plan, float64(r.Rate)/units.Giga, r.Efficiency,
			units.PercentChange(base.Efficiency, r.Efficiency))
	}
	if err := emit(o, tbl); err != nil {
		return err
	}
	fmt.Printf("controller: %d ticks, final caps %v (static P_best is %.0f W)\n",
		ctl.Ticks(), ctl.Caps(), row.BestFrac*float64(spec.GPUArch.TDP))
	return nil
}

// runBudget prints the node-level power-budget frontier: for a global
// GPU Watt budget, the optimal per-GPU cap split and the resulting
// throughput and efficiency — the power-constrained operation scenario
// of the paper's related work, answered with our calibrated curves.
func runBudget(o *options) error {
	spec := platform.FourA100Spec()
	arch := spec.GPUArch
	const work = 3.8e11 // one 5760-tile dgemm launch
	pts, err := powercap.BudgetSweep(arch, spec.GPUCount, prec.Double, work, 13)
	if err != nil {
		return err
	}
	tbl := report.NewTable(
		fmt.Sprintf("Extension — GPU power budget frontier, dgemm on %d x %s", spec.GPUCount, arch.Name),
		"budget_W", "agg Gflop/s", "agg power_W", "Gflop/s/W")
	for _, p := range pts {
		tbl.AddRow(float64(p.Budget), float64(p.Rate)/units.Giga, float64(p.Power), p.EffGFW)
	}
	if err := emit(o, tbl); err != nil {
		return err
	}
	// Show one concrete allocation.
	alloc, err := powercap.AllocateBudget(arch, spec.GPUCount, 1000, prec.Double, work, 0)
	if err != nil {
		return err
	}
	fmt.Printf("example: 1000 W over %d GPUs -> caps %v, %.0f Gflop/s at %.0f W\n",
		spec.GPUCount, alloc.Caps, float64(alloc.Rate)/units.Giga, float64(alloc.Power))
	return nil
}

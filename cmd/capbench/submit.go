// Submit-to-service mode: instead of running a sweep in-process,
// -submit posts the experiment as a JobSpec to a capserved
// coordinator's /v1/submit and follows /v1/job/{id} until the sweep
// finishes.  The cells, seeds and artifacts are identical to a local
// run — the job is declared, and the service's workers expand it
// through the same pure functions this binary would use.
//
// The watch is bounded: -submit-timeout arms a deadline on the whole
// lifecycle (post + follow), so a dead or wedged coordinator fails the
// command with a clear error instead of being polled forever, while
// Ctrl-C still detaches cleanly (the job keeps running server-side).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/sweepd"
)

// submittable lists the experiments that map onto sweepd job specs.
func submittable(cmd string) bool {
	switch cmd {
	case "grid", "fig3", "fig4":
		return true
	}
	return false
}

// runSubmit posts the experiment to the coordinator and waits for the
// job to finish, mirroring a local run's lifecycle.
func runSubmit(o *options, cmd string) error {
	if !submittable(cmd) {
		return fmt.Errorf("-submit supports grid, fig3 and fig4 (got %q)", cmd)
	}
	base := strings.TrimSuffix(o.submit, "/")
	spec := sweepd.JobSpec{
		Experiment: cmd,
		Platform:   o.platform,
		Scale:      o.scale,
		Seed:       o.seed,
		Scheduler:  o.scheduler,
		Faults:     o.faultsRaw,
		Tenant:     o.tenant,
	}

	// Two cancellation causes share one context: the signal handler
	// (detach, job keeps running) and the -submit-timeout deadline
	// (failure — the coordinator never delivered).
	ctx := o.ctx
	if o.submitTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.submitTimeout)
		defer cancel()
	}
	client := &http.Client{Timeout: 30 * time.Second}

	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+sweepd.PathSubmit, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return submitCtxErr(ctx, o, "", base)
		}
		return fmt.Errorf("submit to %s: %w", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if resp.StatusCode == http.StatusTooManyRequests {
			return fmt.Errorf("submit to %s: coordinator is at capacity (HTTP 429, Retry-After %ss): %s",
				base, resp.Header.Get("Retry-After"), strings.TrimSpace(string(msg)))
		}
		return fmt.Errorf("submit to %s: HTTP %d: %s", base, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	var sr sweepd.SubmitReply
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return err
	}
	switch {
	case sr.Duplicate:
		fmt.Fprintf(os.Stderr, "capbench: job %s already known to %s (%s); watching it\n", sr.JobID, base, sr.State)
	case sr.State == "queued" && sr.Position > 0:
		fmt.Fprintf(os.Stderr, "capbench: job %s queued at position %d on %s (%d cells)\n", sr.JobID, sr.Position, base, sr.Cells)
	default:
		fmt.Fprintf(os.Stderr, "capbench: job %s submitted to %s (%d cells)\n", sr.JobID, base, sr.Cells)
	}

	jobPath := sweepd.PathJobPrefix + sr.JobID
	for {
		select {
		case <-ctx.Done():
			return submitCtxErr(ctx, o, sr.JobID, base)
		case <-time.After(500 * time.Millisecond):
		}
		st, err := jobStatus(ctx, client, base, jobPath)
		if err != nil {
			if ctx.Err() != nil {
				return submitCtxErr(ctx, o, sr.JobID, base)
			}
			fmt.Fprintf(os.Stderr, "capbench: job status: %v (retrying)\n", err)
			continue
		}
		switch {
		case st.State == "cancelled":
			return fmt.Errorf("job %s was cancelled on %s", sr.JobID, base)
		case st.State == "queued":
			fmt.Fprintf(os.Stderr, "\rcapbench: queued (position %d)          ", st.Position)
			continue
		case !st.Finished:
			fmt.Fprintf(os.Stderr, "\rcapbench: %d/%d cells (%d in flight)", st.Counts.Done, st.Counts.Total, st.Counts.InFlight)
			continue
		}
		fmt.Fprintln(os.Stderr)
		rep := st.Report
		if rep == nil {
			return fmt.Errorf("job %s finished without a report", sr.JobID)
		}
		fmt.Fprintf(os.Stderr, "capbench: job %s finished: %d/%d cells done (%d resumed, %d stolen, %d expired)\n",
			rep.JobID, rep.Done, rep.Cells, rep.Resumed, rep.Stolen, rep.Expired)
		if rep.Degraded {
			return fmt.Errorf("job %s degraded: %d cell(s) quarantined as poisoned", rep.JobID, len(rep.Quarantined))
		}
		return nil
	}
}

// submitCtxErr distinguishes the two ways the watch ends early: the
// deadline expired (an error — the coordinator never delivered) vs the
// user detached (a clean exit — the job keeps running server-side).
func submitCtxErr(ctx context.Context, o *options, jobID, base string) error {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		if jobID == "" {
			return fmt.Errorf("submit to %s: no response within -submit-timeout %v", base, o.submitTimeout)
		}
		return fmt.Errorf("job %s not finished within -submit-timeout %v (it keeps running on %s)", jobID, o.submitTimeout, base)
	}
	if jobID != "" {
		fmt.Fprintf(os.Stderr, "capbench: detached — job %s keeps running on %s\n", jobID, base)
	}
	return nil
}

// jobStatus fetches the coordinator's status document for one job.
func jobStatus(ctx context.Context, client *http.Client, base, jobPath string) (*sweepd.JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+jobPath, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	var st sweepd.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Submit-to-service mode: instead of running a sweep in-process,
// -submit posts the experiment as a JobSpec to a capserved
// coordinator's /v1/submit and follows /v1/job until the sweep
// finishes.  The cells, seeds and artifacts are identical to a local
// run — the job is declared, and the service's workers expand it
// through the same pure functions this binary would use.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/sweepd"
)

// submittable lists the experiments that map onto sweepd job specs.
func submittable(cmd string) bool {
	switch cmd {
	case "grid", "fig3", "fig4":
		return true
	}
	return false
}

// runSubmit posts the experiment to the coordinator and waits for the
// job to finish, mirroring a local run's lifecycle (Ctrl-C stops the
// watch, not the service; the job keeps running server-side).
func runSubmit(o *options, cmd string) error {
	if !submittable(cmd) {
		return fmt.Errorf("-submit supports grid, fig3 and fig4 (got %q)", cmd)
	}
	base := strings.TrimSuffix(o.submit, "/")
	spec := sweepd.JobSpec{
		Experiment: cmd,
		Platform:   o.platform,
		Scale:      o.scale,
		Seed:       o.seed,
		Scheduler:  o.scheduler,
		Faults:     o.faultsRaw,
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Post(base+sweepd.PathSubmit, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("submit to %s: %w", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("submit to %s: HTTP %d: %s", base, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	var sr sweepd.SubmitReply
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "capbench: job %s submitted to %s (%d cells); watching %s\n",
		sr.JobID, base, sr.Cells, base+sweepd.PathJob)

	for {
		select {
		case <-o.ctx.Done():
			fmt.Fprintf(os.Stderr, "capbench: detached — job %s keeps running on %s\n", sr.JobID, base)
			return nil
		case <-time.After(500 * time.Millisecond):
		}
		st, err := jobStatus(client, base)
		if err != nil {
			fmt.Fprintf(os.Stderr, "capbench: job status: %v (retrying)\n", err)
			continue
		}
		if st.JobID != sr.JobID {
			return fmt.Errorf("coordinator switched to job %s while watching %s", st.JobID, sr.JobID)
		}
		if !st.Finished {
			fmt.Fprintf(os.Stderr, "\rcapbench: %d/%d cells (%d in flight)", st.Counts.Done, st.Counts.Total, st.Counts.InFlight)
			continue
		}
		fmt.Fprintln(os.Stderr)
		rep := st.Report
		if rep == nil {
			return fmt.Errorf("job %s finished without a report", sr.JobID)
		}
		fmt.Fprintf(os.Stderr, "capbench: job %s finished: %d/%d cells done (%d resumed, %d stolen, %d expired)\n",
			rep.JobID, rep.Done, rep.Cells, rep.Resumed, rep.Stolen, rep.Expired)
		if rep.Degraded {
			return fmt.Errorf("job %s degraded: %d cell(s) quarantined as poisoned", rep.JobID, len(rep.Quarantined))
		}
		return nil
	}
}

// jobStatus fetches the coordinator's /v1/job document.
func jobStatus(client *http.Client, base string) (*sweepd.JobStatus, error) {
	resp, err := client.Get(base + sweepd.PathJob)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	var st sweepd.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Command capbench regenerates every table and figure of the paper's
// evaluation on the simulated platforms.
//
// Usage:
//
//	capbench <experiment> [flags]
//
// Experiments:
//
//	fig1     single-GPU GEMM cap sweep (efficiency / perf / energy)
//	table1   best cap per architecture and precision
//	table2   the experiment configurations (sizes, tilings, P levels)
//	fig3     plan sweeps, double precision, all platforms, GEMM+POTRF
//	fig4     plan sweeps, single precision
//	fig5     per-device energy split on 24-Intel-2-V100, double
//	fig6     efficiency gain from capping CPU1 at 48 % TDP (V100 node)
//	fig7     efficiency across tile sizes, all platforms
//	grid     the full Table II × plan grid through the parallel executor
//	autoplan automatic plan selection under a slowdown budget (extension)
//	budget   node power budget -> per-GPU cap allocation (extension)
//	ablation scheduler / calibration / transfer-model ablations (extension)
//	all      everything above in paper order
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/obsreport"
	"repro/internal/sigctx"
	"repro/internal/telemetry"
	"repro/internal/telemetry/agg"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	opts := parseOpts(fs, args)

	// SIGINT/SIGTERM cancel the pool context: in-flight cells finish and
	// commit to the checkpoint journal, queued cells never start, and the
	// interrupt path below reports what survived instead of discarding it.
	// A second signal during that wind-down (e.g. a wedged journal flush)
	// force-exits 130 immediately instead of being swallowed.
	ctx, stop := sigctx.New(context.Background(), nil)
	defer stop()
	opts.ctx = ctx

	// "report" is a pure reader: it renders the HTML sweep report from
	// a finished (or crashed) run's artifacts and must never open a
	// journal for writing or start a sweep.
	if cmd == "report" {
		if rerr := runReport(opts); rerr != nil {
			fmt.Fprintf(os.Stderr, "capbench report: %v\n", rerr)
			os.Exit(1)
		}
		return
	}

	// -submit hands the experiment to a capserved coordinator instead of
	// running it in-process; everything below (journal, telemetry, agg)
	// is the service's job there, not this client's.
	if opts.submit != "" {
		if serr := runSubmit(opts, cmd); serr != nil {
			fmt.Fprintf(os.Stderr, "capbench %s: %v\n", cmd, serr)
			os.Exit(1)
		}
		return
	}

	// The event bus underlies /events, /progress and the events.jsonl
	// log; it exists whenever something will consume it.
	if opts.metricsAddr != "" || opts.aggDir != "" {
		opts.events = obs.NewBus()
	}

	if opts.checkpoint != "" {
		m := ckpt.Manifest{Identity: checkpointIdentity(cmd, opts), RootSeed: opts.seed}
		var jerr error
		if opts.resume {
			opts.journal, jerr = ckpt.Resume(opts.checkpoint, m)
		} else {
			opts.journal, jerr = ckpt.Create(opts.checkpoint, m)
		}
		if jerr != nil {
			fmt.Fprintf(os.Stderr, "capbench: %v\n", jerr)
			os.Exit(1)
		}
		if opts.resume {
			fmt.Fprintf(os.Stderr, "capbench: resuming from %s: %d cell(s) already complete\n",
				opts.checkpoint, opts.journal.Done())
		}
		if opts.events != nil {
			bus := opts.events
			opts.journal.SetOnCommit(func(r ckpt.Record) {
				bus.Publish(obs.Event{Type: obs.CheckpointCommitted, Cell: r.Key, Status: string(r.Status)})
			})
		}
	}

	var srv *telemetry.Server
	var stopRuntimeMetrics func()
	if opts.metricsAddr != "" {
		opts.telem = telemetry.NewCollector()
		opts.telem.AttachBus(opts.events)
		opts.telem.SetRunInfo(runID(cmd), ckpt.HashIdentity(checkpointIdentity(cmd, opts)))
		tracker := obs.NewTracker(opts.events)
		opts.telem.AttachProgress(tracker)
		tracker.Start(ctx, 1024)
		stopRuntimeMetrics = telemetry.StartRuntimeMetrics(opts.telem.Registry, 0)
		var err error
		srv, err = telemetry.Serve(opts.metricsAddr, opts.telem)
		if err != nil {
			fmt.Fprintf(os.Stderr, "capbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "telemetry: serving /metrics, /timeseries.json, /decisions.json, /surface, /progress and /events on http://%s\n", srv.Addr())
	}

	var eventLog *obs.FileSink
	if opts.events != nil && opts.aggDir != "" {
		if aerr := os.MkdirAll(opts.aggDir, 0o755); aerr != nil {
			fmt.Fprintf(os.Stderr, "capbench: -agg-dir: %v\n", aerr)
			os.Exit(1)
		}
		var serr error
		eventLog, serr = obs.NewFileSink(filepath.Join(opts.aggDir, eventsFile), opts.events)
		if serr != nil {
			fmt.Fprintf(os.Stderr, "capbench: events log: %v\n", serr)
			os.Exit(1)
		}
	}

	if opts.stallProfile > 0 {
		opts.profiler = obs.NewProfiler(opts.profileDir, 0)
	}

	if opts.aggDir != "" {
		if aerr := os.MkdirAll(opts.aggDir, 0o755); aerr != nil {
			fmt.Fprintf(os.Stderr, "capbench: -agg-dir: %v\n", aerr)
			os.Exit(1)
		}
		sink, aerr := agg.NewJSONLSink(filepath.Join(opts.aggDir, agg.StreamFile))
		if aerr != nil {
			fmt.Fprintf(os.Stderr, "capbench: -agg-dir: %v\n", aerr)
			os.Exit(1)
		}
		cfg := agg.ExporterConfig{BatchSize: opts.aggFlush}
		if opts.telem != nil {
			cfg.OnDrop = opts.telem.ObserveDroppedRollups
		}
		opts.agg = agg.New(sink, cfg)
		if opts.telem != nil {
			// /surface answers mid-sweep: the surface merges cells as pool
			// workers complete them.
			opts.telem.SetSurface(opts.agg.Surface())
		}
	}

	var err error
	switch cmd {
	case "fig1":
		err = runFig1(opts)
	case "table1":
		err = runTable1(opts)
	case "table2":
		err = runTable2(opts)
	case "fig3":
		err = runFig34(opts, false)
	case "fig4":
		err = runFig34(opts, true)
	case "fig5":
		err = runFig5(opts)
	case "fig6":
		err = runFig6(opts)
	case "fig7":
		err = runFig7(opts)
	case "grid":
		err = runGrid(opts)
	case "autoplan":
		err = runAutoPlan(opts)
	case "ablation":
		err = runAblation(opts)
	case "budget":
		err = runBudget(opts)
	case "all":
		err = runAll(opts)
	default:
		usage()
		os.Exit(2)
	}
	if err == nil && opts.telem != nil {
		err = telemetrySummary(opts)
	}
	if opts.agg != nil {
		// Flush the stream sink and write the canonical artifacts even on
		// interrupt: the surface of the cells that did complete is exactly
		// what a resume continues from.
		if aerr := opts.agg.Close(); aerr != nil && err == nil {
			err = aerr
		}
		if aerr := opts.agg.WriteArtifacts(opts.aggDir); aerr != nil && err == nil {
			err = aerr
		}
		fmt.Fprintf(os.Stderr, "agg: %d cell(s) aggregated into %s (%d rollup(s) dropped by the exporter)\n",
			opts.agg.Surface().Cells(), opts.aggDir, opts.agg.Dropped())
	}
	if srv != nil {
		if opts.hold > 0 {
			fmt.Fprintf(os.Stderr, "telemetry: holding endpoint open for %v (scrape http://%s/metrics)\n", opts.hold, srv.Addr())
			time.Sleep(opts.hold)
		}
		srv.Close()
	}
	if stopRuntimeMetrics != nil {
		stopRuntimeMetrics()
	}
	if eventLog != nil {
		if eerr := eventLog.Close(); eerr != nil && err == nil {
			err = eerr
		}
		if n := eventLog.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "events: %d event(s) dropped by the file sink\n", n)
		}
	}
	if opts.profiler != nil && opts.profiler.Captured() > 0 {
		fmt.Fprintf(os.Stderr, "profiles: %d stall capture(s) in %s (%d skipped while busy)\n",
			opts.profiler.Captured(), opts.profileDir, opts.profiler.Skipped())
	}
	if opts.journal != nil {
		// Every record was fsynced at commit; Close flushes the file and
		// ends this process's writes before we report or exit.
		if cerr := opts.journal.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if ctx.Err() != nil {
		if opts.journal != nil {
			fmt.Fprintf(os.Stderr,
				"capbench: interrupted — %d cell(s) checkpointed in %s; re-run with -resume to continue\n",
				opts.journal.Done(), opts.checkpoint)
		} else {
			fmt.Fprintln(os.Stderr,
				"capbench: interrupted — no -checkpoint directory, partial results discarded")
		}
		os.Exit(130)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "capbench %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

// checkpointIdentity pins a checkpoint journal to everything about this
// invocation that changes cell results.  -parallel is deliberately
// absent: resuming at a different pool size is byte-identical by the
// executor's determinism contract.
func checkpointIdentity(cmd string, o *options) string {
	return fmt.Sprintf("capbench|%s|platform=%s|scale=%d|scheduler=%s|seed=%d|faults=%s|trace=%v|budget=%v",
		cmd, o.platform, o.scale, o.scheduler, o.seed, o.faults, o.traceDir != "", o.budget)
}

// telemetrySummary folds the sampler and decision log into the report
// output once the experiments finish.
func telemetrySummary(o *options) error {
	if s := o.telem.Sampler(); s != nil {
		if err := emit(o, s.SummaryTable()); err != nil {
			return err
		}
		fmt.Println()
	}
	if o.telem.Decisions.Total() > 0 {
		if err := emit(o, o.telem.Decisions.SummaryTable()); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

// options carries the shared flags.
type options struct {
	platform     string
	csv          bool
	scale        int
	budget       float64
	scheduler    string
	outDir       string
	traceDir     string
	metricsAddr  string
	hold         time.Duration
	parallel     int
	seed         int64
	faults       faults.Spec
	checkpoint   string
	resume       bool
	cellTimeout  time.Duration
	aggDir       string
	aggFlush     int
	stallProfile time.Duration
	profileDir   string
	reportOut    string
	submit       string
	// submitTimeout bounds the whole -submit lifecycle (post + watch);
	// 0 watches until the job finishes or the user detaches.
	submitTimeout time.Duration
	// tenant labels the -submit job for the coordinator's per-tenant
	// admission quota.
	tenant string
	// faultsRaw is the unparsed -faults spec, forwarded verbatim in a
	// -submit job (the service's workers parse it themselves).
	faultsRaw string

	// telem is non-nil when -metrics-addr is set; every experiment
	// threads it through core so the endpoint reflects the live run.
	telem *telemetry.Collector
	// ctx is cancelled by SIGINT/SIGTERM; journal is the open checkpoint
	// when -checkpoint is set.  Both flow into the pool via popt.
	ctx     context.Context
	journal *ckpt.Journal
	// agg is the aggregation tier when -agg-dir is set: every completed
	// cell rolls up into its surface (served at /surface) and streams
	// through the batching exporter into <agg-dir>/stream.jsonl.
	agg *agg.Aggregator
	// events is the observability bus, created whenever -metrics-addr or
	// -agg-dir will consume it; profiler captures stall-triggered CPU
	// profiles when -stall-profile is set.
	events   *obs.Bus
	profiler *obs.Profiler
}

func parseOpts(fs *flag.FlagSet, args []string) *options {
	o := &options{}
	fs.StringVar(&o.platform, "platform", "all",
		"platform name (24-Intel-2-V100, 64-AMD-2-A100, 32-AMD-4-A100) or \"all\"")
	fs.BoolVar(&o.csv, "csv", false, "emit CSV instead of aligned tables")
	fs.IntVar(&o.scale, "scale", 1, "divide matrix orders by this factor for quicker runs")
	fs.Float64Var(&o.budget, "budget", 15, "autoplan: max slowdown in percent")
	fs.StringVar(&o.scheduler, "scheduler", "", "override the dmdas scheduler")
	fs.StringVar(&o.outDir, "out", "", "also write each table as a CSV file into this directory")
	fs.StringVar(&o.traceDir, "trace-dir", "",
		"write per-cell span-trace artifacts (Chrome trace, folded stacks, analyzer report) into this directory")
	fs.StringVar(&o.metricsAddr, "metrics-addr", "",
		"serve live telemetry on this address (/metrics, /timeseries.json, /decisions.json)")
	fs.DurationVar(&o.hold, "hold", 0, "keep the telemetry endpoint open this long after the experiments finish")
	fs.IntVar(&o.parallel, "parallel", runtime.NumCPU(),
		"worker-pool size for sweep cells (1 = serial; output is byte-identical at any value)")
	fs.Int64Var(&o.seed, "seed", 0, "root seed for the grid experiment (per-cell seeds are derived from it)")
	fs.StringVar(&o.checkpoint, "checkpoint", "",
		"journal completed sweep cells into this directory so an interrupted run can be resumed")
	fs.BoolVar(&o.resume, "resume", false,
		"resume from the -checkpoint directory, skipping cells whose results are already journalled")
	fs.DurationVar(&o.cellTimeout, "cell-timeout", 0,
		"watchdog: abandon a sweep cell that completes no task for this much wall-clock time (0 = off)")
	fs.StringVar(&o.aggDir, "agg-dir", "",
		"aggregate completed cells into this directory (surface.json, rollups.jsonl, stream.jsonl) and serve /surface when -metrics-addr is set")
	fs.IntVar(&o.aggFlush, "agg-flush", 0,
		"aggregation exporter batch size: flush the export stream every N cell rollups (0 = default 64)")
	fs.DurationVar(&o.stallProfile, "stall-profile", 0,
		"capture an on-demand CPU profile the first time a cell completes no task for this much wall-clock time (0 = off)")
	fs.StringVar(&o.profileDir, "profile-dir", "profiles",
		"directory stall-triggered CPU profiles are written into")
	fs.StringVar(&o.reportOut, "report-out", "sweep-report.html",
		"report: output path for the HTML sweep report")
	fs.StringVar(&o.submit, "submit", "",
		"submit the experiment to a capserved coordinator at this URL instead of running it in-process (grid, fig3, fig4)")
	fs.DurationVar(&o.submitTimeout, "submit-timeout", 0,
		"give up on a -submit job after this long — a dead or wedged coordinator fails the command instead of being polled forever (0 = wait indefinitely)")
	fs.StringVar(&o.tenant, "tenant", "",
		"tenant label on a -submit job (the coordinator enforces a per-tenant queue quota)")
	faultSpec := fs.String("faults", "",
		"deterministic fault injection spec, e.g. capfail=0.3,clamp=0.1,throttle=1,dropout=1,taskfail=0.02,retries=3 (seeded from -seed)")
	fs.Parse(args)
	spec, err := faults.ParseSpec(*faultSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "capbench: -faults: %v\n", err)
		os.Exit(2)
	}
	o.faults = spec
	o.faultsRaw = *faultSpec
	if o.scale < 1 {
		o.scale = 1
	}
	if o.parallel < 1 {
		o.parallel = 1
	}
	if o.resume && o.checkpoint == "" {
		fmt.Fprintln(os.Stderr, "capbench: -resume requires -checkpoint DIR")
		os.Exit(2)
	}
	if o.hold > 0 && o.metricsAddr == "" {
		fmt.Fprintln(os.Stderr, "capbench: -hold requires -metrics-addr (there is no telemetry endpoint to hold open)")
		os.Exit(2)
	}
	return o
}

// popt builds the executor options: the -parallel pool size plus, when
// fanning out, a progress line on stderr (stdout stays clean for the
// tables, which render only after the pool drains).
func (o *options) popt() core.ParallelOptions {
	po := core.ParallelOptions{
		Workers:     o.parallel,
		Context:     o.ctx,
		Checkpoint:  o.journal,
		CellTimeout: o.cellTimeout,
	}
	if o.agg != nil {
		// Guarded assignment: a typed-nil *Aggregator in the interface
		// field would defeat the executor's nil check.
		po.Rollups = o.agg
	}
	po.Events = o.events
	if o.profiler != nil {
		po.SoftTimeout = o.stallProfile
		prof := o.profiler
		po.OnCellStall = func(cell string, idle time.Duration) {
			fmt.Fprintf(os.Stderr, "\ncapbench: cell stalled %v, capturing CPU profile: %s\n", idle.Round(time.Second), cell)
			// The capture blocks for its sampling window; run it off the
			// watchdog goroutine so the hard deadline keeps ticking.
			go func() {
				if path, err := prof.CaptureCPU(cell); err != nil {
					fmt.Fprintf(os.Stderr, "capbench: stall profile: %v\n", err)
				} else if path != "" {
					fmt.Fprintf(os.Stderr, "capbench: stall profile written: %s\n", path)
				}
			}()
		}
	}
	if o.parallel > 1 {
		po.OnProgress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rcapbench: %d/%d cells", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	return po
}

func usage() {
	fmt.Fprintln(os.Stderr, strings.TrimSpace(`
usage: capbench <experiment> [flags]
experiments: fig1 table1 table2 fig3 fig4 fig5 fig6 fig7 grid autoplan ablation budget all
             report (render an HTML sweep report from -agg-dir / -checkpoint artifacts)
flags: -platform <name|all> -csv -scale N -budget PCT -scheduler NAME -out DIR
       -trace-dir DIR -parallel N -seed N -faults SPEC -metrics-addr HOST:PORT -hold DURATION
       -checkpoint DIR -resume -cell-timeout DURATION -agg-dir DIR -agg-flush N
       -stall-profile DURATION -profile-dir DIR -report-out FILE -submit URL`))
}

// eventsFile is the JSONL event log written into -agg-dir.
const eventsFile = "events.jsonl"

// runID builds a per-invocation identity for capsim_run_info.  Unlike
// everything inside the simulation, this is allowed to read the wall
// clock: it labels exports, it never touches results.
func runID(cmd string) string {
	return fmt.Sprintf("%s-%d-%d", cmd, time.Now().Unix(), os.Getpid())
}

// runReport renders the self-contained HTML sweep report from a run's
// on-disk artifacts: -agg-dir (rollups + event log) and, when given,
// the -checkpoint journal.
func runReport(o *options) error {
	if o.aggDir == "" {
		return fmt.Errorf("report needs -agg-dir DIR (the directory a sweep aggregated into)")
	}
	in := obsreport.Inputs{Rollups: filepath.Join(o.aggDir, agg.RollupsFile)}
	if events := filepath.Join(o.aggDir, eventsFile); fileExists(events) {
		in.Events = events
	}
	if o.checkpoint != "" {
		in.Journal = filepath.Join(o.checkpoint, "journal.jsonl")
	}
	if err := obsreport.Write(o.reportOut, in); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "capbench: sweep report written to %s\n", o.reportOut)
	return nil
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

func runAll(o *options) error {
	steps := []struct {
		name string
		fn   func(*options) error
	}{
		{"fig1", runFig1},
		{"table1", runTable1},
		{"table2", runTable2},
		{"fig3", func(o *options) error { return runFig34(o, false) }},
		{"fig4", func(o *options) error { return runFig34(o, true) }},
		{"fig5", runFig5},
		{"fig6", runFig6},
		{"fig7", runFig7},
		{"grid", runGrid},
		{"autoplan", runAutoPlan},
		{"ablation", runAblation},
		{"budget", runBudget},
	}
	for _, s := range steps {
		fmt.Printf("==== %s ====\n", s.name)
		if err := s.fn(o); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		fmt.Println()
	}
	return nil
}

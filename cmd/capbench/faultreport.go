package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/report"
)

// emitFaultSummary prints the per-cell fault/retry/eviction table for a
// sweep run under -faults.  No-op without a fault spec, keeping the
// fault-free output byte-identical to previous releases.
func emitFaultSummary(o *options, rows []core.TableIIRow, sweeps [][]core.PlanResult) error {
	if o.faults.Zero() {
		return nil
	}
	tbl := report.NewTable(
		fmt.Sprintf("Fault injection — spec %s (seed %d)", o.faults, o.seed),
		"platform", "workload", "plan", "injected", "cap fail", "cap clamp", "cap retries",
		"task retries", "evicted", "requeued", "surviving plan")
	for i, row := range rows {
		for _, pr := range sweeps[i] {
			rep := pr.Result.Faults
			if rep == nil {
				continue
			}
			surviving := pr.Plan.String()
			evicted := 0
			if d := pr.Result.Degraded; d != nil {
				surviving = d.Plan
				evicted = len(d.Evictions)
			}
			tbl.AddRow(row.Platform, row.Workload().String(), pr.Plan.String(),
				rep.Injected.Total(), rep.Injected.CapFailures, rep.Injected.CapClamps,
				rep.CapRetries, rep.TaskRetries, evicted, rep.Injected.Requeued, surviving)
		}
	}
	if err := emit(o, tbl); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

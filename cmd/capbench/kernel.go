package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/powercap"
	"repro/internal/prec"
	"repro/internal/report"
)

// runFig1 prints the single-GPU GEMM cap sweep: efficiency, performance
// and per-kernel energy against the cap, per matrix size and precision,
// on the A100-SXM4 (the architecture Fig. 1 shows).
func runFig1(o *options) error {
	arch := gpu.A100SXM4()
	sizes := []int{1024, 2048, 5120}
	for _, p := range prec.All {
		tbl := report.NewTable(
			fmt.Sprintf("Fig. 1 — cuBLAS %sgemm under power capping on %s (cap swept %v..%v in 2%% steps)",
				p.BLASPrefix(), arch.Name, arch.MinPower, arch.TDP),
			"size", "cap_W", "cap_%TDP", "Gflop/s", "power_W", "energy_J", "Gflop/s/W")
		for _, pt := range core.Fig1Sweep(arch, p, sizes) {
			tbl.AddRow(pt.Size, float64(pt.CapW), pt.CapFrac*100, pt.GFlops,
				float64(pt.PowerW), float64(pt.EnergyJ), pt.EffGFW)
		}
		if err := emit(o, tbl); err != nil {
			return err
		}
		// Highlight the optimum per size, the quantity Table I collects.
		best := map[int]core.Fig1Point{}
		for _, pt := range core.Fig1Sweep(arch, p, sizes) {
			if b, ok := best[pt.Size]; !ok || pt.EffGFW > b.EffGFW {
				best[pt.Size] = pt
			}
		}
		for _, n := range sizes {
			b := best[n]
			fmt.Printf("  best %s n=%d: cap %.0f W (%.0f%% TDP) -> %.1f Gflop/s/W\n",
				p, n, float64(b.CapW), b.CapFrac*100, b.EffGFW)
		}
		fmt.Println()
	}
	return nil
}

// runTable1 prints the recomputed Table I.
func runTable1(o *options) error {
	tbl := report.NewTable("Table I — best configuration for energy efficiency per GPU and precision",
		"GPU", "precision", "matrix size", "best cap (%TDP)", "eff. saving (%)", "slowdown (%)")
	for _, r := range core.Table1() {
		tbl.AddRow(r.Arch, r.Precision.String(), r.Size, r.BestCapPct, r.SavingPct, r.SlowdownPct)
	}
	return emit(o, tbl)
}

// runTable2 prints the experiment configurations with resolved P levels.
func runTable2(o *options) error {
	tbl := report.NewTable("Table II — matrix/tile sizes and GPU power levels per platform and operation",
		"platform", "operation", "N", "Nt", "precision", "P_best (%TDP)", "P_best (W)", "P_min (W)", "P_max (W)")
	for _, r := range core.TableII {
		spec, err := specFor(r.Platform)
		if err != nil {
			return err
		}
		arch := spec.GPUArch
		caps := powercap.MustParsePlan("B").Caps(arch, r.BestFrac)
		tbl.AddRow(r.Platform, r.Op.String(), r.N, r.NB, r.Precision.String(),
			r.BestFrac*100, float64(caps[0]), float64(arch.MinPower), float64(arch.TDP))
	}
	return emit(o, tbl)
}

func emit(o *options, tbl *report.Table) error {
	if o.outDir != "" {
		if err := writeCSVFile(o.outDir, tbl); err != nil {
			return err
		}
	}
	if o.csv {
		return tbl.WriteCSV(os.Stdout)
	}
	return tbl.Write(os.Stdout)
}

// writeCSVFile stores the table under a slug derived from its title.
func writeCSVFile(dir string, tbl *report.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	slug := make([]rune, 0, 64)
	for _, r := range strings.ToLower(tbl.Title()) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			slug = append(slug, r)
		case r == ' ' || r == '-' || r == '/' || r == '.':
			if len(slug) > 0 && slug[len(slug)-1] != '_' {
				slug = append(slug, '_')
			}
		}
		if len(slug) >= 64 {
			break
		}
	}
	name := strings.Trim(string(slug), "_")
	if name == "" {
		name = "table"
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return tbl.WriteCSV(f)
}

package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/spantrace"
)

// writeSweepTraces dumps one artifact set per traced sweep cell into
// -trace-dir: a Chrome trace with causal flow arrows, a folded-stack
// energy profile and the analyzer report.  Filenames derive from
// CellSeed over the cell's TraceCellKey — a pure function of the cell's
// configuration, never of its index in the grid or the worker that ran
// it — so reruns and different -parallel values produce byte-identical
// trees.  root is the seed the experiment derived its cells from.
func writeSweepTraces(o *options, rows []core.TableIIRow, opt core.SweepOptions, root int64, sweeps [][]core.PlanResult) error {
	if o.traceDir == "" {
		return nil
	}
	if err := os.MkdirAll(o.traceDir, 0o755); err != nil {
		return err
	}
	index, err := os.OpenFile(filepath.Join(o.traceDir, "index.txt"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer index.Close()

	written := 0
	seen := make(map[*spantrace.Trace]bool)
	for i, row := range rows {
		for _, pr := range sweeps[i] {
			tr := pr.Result.Trace
			if tr == nil || seen[tr] {
				continue // baseline results repeat for every all-H plan
			}
			seen[tr] = true
			key := core.TraceCellKey(row, opt, pr.Plan)
			stem := fmt.Sprintf("cell-%016x", uint64(core.CellSeed(root, key)))
			if err := writeCell(o.traceDir, stem, tr); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(index, "%s %s\n", stem, key); err != nil {
				return err
			}
			written++
		}
	}
	fmt.Fprintf(os.Stderr, "capbench: %d cell traces written to %s\n", written, o.traceDir)
	return nil
}

func writeCell(dir, stem string, tr *spantrace.Trace) error {
	outputs := []struct {
		suffix string
		write  func(*os.File) error
	}{
		{".chrome.json", func(f *os.File) error { return spantrace.WriteChrome(f, tr) }},
		{".folded.txt", func(f *os.File) error { return spantrace.WriteFolded(f, tr) }},
		{".report.txt", func(f *os.File) error { return spantrace.Analyze(tr, 10).Write(f) }},
	}
	for _, out := range outputs {
		f, err := os.Create(filepath.Join(dir, stem+out.suffix))
		if err != nil {
			return err
		}
		if err := out.write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

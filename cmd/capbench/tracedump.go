package main

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/fsutil"
	"repro/internal/spantrace"
)

// writeSweepTraces dumps one artifact set per traced sweep cell into
// -trace-dir: a Chrome trace with causal flow arrows, a folded-stack
// energy profile and the analyzer report.  Filenames derive from
// CellSeed over the cell's TraceCellKey — a pure function of the cell's
// configuration, never of its index in the grid or the worker that ran
// it — so reruns and different -parallel values produce byte-identical
// trees.  root is the seed the experiment derived its cells from.
//
// Every file (including index.txt) commits via write-temp-fsync-rename,
// so an interrupt mid-dump leaves whole artifacts from before the cut
// and nothing half-written.
func writeSweepTraces(o *options, rows []core.TableIIRow, opt core.SweepOptions, root int64, sweeps [][]core.PlanResult) error {
	if o.traceDir == "" {
		return nil
	}
	if err := os.MkdirAll(o.traceDir, 0o755); err != nil {
		return err
	}
	indexPath := filepath.Join(o.traceDir, "index.txt")
	index, err := os.ReadFile(indexPath)
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	var indexBuf bytes.Buffer
	indexBuf.Write(index)

	written := 0
	seen := make(map[*spantrace.Trace]bool)
	for i, row := range rows {
		for _, pr := range sweeps[i] {
			tr := pr.Result.Trace
			if tr == nil || seen[tr] {
				continue // baseline results repeat for every all-H plan
			}
			seen[tr] = true
			key := core.TraceCellKey(row, opt, pr.Plan)
			stem := fmt.Sprintf("cell-%016x", uint64(core.CellSeed(root, key)))
			if err := writeCell(o.traceDir, stem, tr); err != nil {
				return err
			}
			fmt.Fprintf(&indexBuf, "%s %s\n", stem, key)
			written++
		}
	}
	if err := fsutil.WriteFileAtomic(indexPath, indexBuf.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "capbench: %d cell traces written to %s\n", written, o.traceDir)
	return nil
}

func writeCell(dir, stem string, tr *spantrace.Trace) error {
	outputs := []struct {
		suffix string
		write  func(io.Writer) error
	}{
		{".chrome.json", func(w io.Writer) error { return spantrace.WriteChrome(w, tr) }},
		{".folded.txt", func(w io.Writer) error { return spantrace.WriteFolded(w, tr) }},
		{".report.txt", func(w io.Writer) error { return spantrace.Analyze(tr, 10).Write(w) }},
	}
	for _, out := range outputs {
		var buf bytes.Buffer
		if err := out.write(&buf); err != nil {
			return err
		}
		if err := fsutil.WriteFileAtomic(filepath.Join(dir, stem+out.suffix), buf.Bytes(), 0o644); err != nil {
			return err
		}
	}
	return nil
}

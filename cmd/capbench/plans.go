package main

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/prec"
	"repro/internal/report"
	"repro/internal/units"
)

// specFor resolves a platform name.
func specFor(name string) (platform.Spec, error) {
	return platform.SpecByName(name)
}

// platformsFor expands "-platform all".
func platformsFor(o *options) ([]string, error) {
	if o.platform == "all" {
		return []string{platform.FourA100Name, platform.TwoA100Name, platform.TwoV100Name}, nil
	}
	if _, err := specFor(o.platform); err != nil {
		return nil, err
	}
	return []string{o.platform}, nil
}

// scaledRow shrinks a Table II row by the -scale factor via the shared
// reduction rule (core.ScaleRow), so a -scale N sweep and a scale-N
// service job mean exactly the same cells.
func scaledRow(r core.TableIIRow, scale int) core.TableIIRow {
	return core.ScaleRow(r, scale)
}

// runFig34 prints the plan sweeps of Fig. 3 (double) or Fig. 4 (single):
// per plan, the performance and energy change against the default and
// the absolute efficiency, for GEMM and POTRF on each platform.
func runFig34(o *options, single bool) error {
	p := prec.Double
	fig := "Fig. 3"
	if single {
		p = prec.Single
		fig = "Fig. 4"
	}
	platforms, err := platformsFor(o)
	if err != nil {
		return err
	}
	// Enumerate every (platform, op) row first, fan the whole figure's
	// cells across the worker pool, then render in enumeration order —
	// the output is byte-identical to the serial loop at any -parallel.
	var rows []core.TableIIRow
	for _, plat := range platforms {
		for _, op := range []core.Operation{core.GEMM, core.POTRF} {
			row, err := core.LookupTableII(plat, op, p)
			if err != nil {
				return err
			}
			rows = append(rows, scaledRow(row, o.scale))
		}
	}
	opt := o.sweepOpts(nil)
	sweeps, err := core.ParallelSweep(rows, opt, o.popt())
	if err != nil {
		return err
	}
	if err := writeSweepTraces(o, rows, opt, opt.Seed, sweeps); err != nil {
		return err
	}
	if err := emitFaultSummary(o, rows, sweeps); err != nil {
		return err
	}
	for i, row := range rows {
		tbl := report.NewTable(
			fmt.Sprintf("%s — %s on %s (%s)", fig, row.Workload(), row.Platform, schedName(o)),
			"plan", "perf Δ%", "energy Δ%", "Gflop/s/W", "Gflop/s", "trend")
		for _, r := range sweeps[i] {
			tbl.AddRow(r.Plan.String(), r.Delta.PerfPct, r.Delta.EnergyPct,
				r.Result.Efficiency, float64(r.Result.Rate)/units.Giga,
				report.Bar(r.Delta.EffGainPct, 40, 12))
		}
		if err := emit(o, tbl); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

// sweepOpts builds the shared sweep options for this invocation,
// turning span tracing on whenever -trace-dir asks for artifacts and
// threading the -faults spec (seeded from -seed) into every cell.
func (o *options) sweepOpts(cpuCaps map[int]units.Watts) core.SweepOptions {
	return core.SweepOptions{
		Scheduler: o.scheduler,
		CPUCaps:   cpuCaps,
		Seed:      o.seed,
		Telemetry: o.telem,
		Trace:     o.traceDir != "",
		Faults:    o.faults,
	}
}

func schedName(o *options) string {
	if o.scheduler == "" {
		return "dmdas"
	}
	return o.scheduler
}

// runFig5 prints the per-device energy split per plan on the V100 node
// in double precision — the paper's Fig. 5.
func runFig5(o *options) error {
	var rows []core.TableIIRow
	for _, op := range []core.Operation{core.GEMM, core.POTRF} {
		row, err := core.LookupTableII(platform.TwoV100Name, op, prec.Double)
		if err != nil {
			return err
		}
		rows = append(rows, scaledRow(row, o.scale))
	}
	opt := o.sweepOpts(nil)
	sweeps, err := core.ParallelSweep(rows, opt, o.popt())
	if err != nil {
		return err
	}
	if err := writeSweepTraces(o, rows, opt, opt.Seed, sweeps); err != nil {
		return err
	}
	if err := emitFaultSummary(o, rows, sweeps); err != nil {
		return err
	}
	for i, row := range rows {
		results := sweeps[i]
		tbl := report.NewTable(
			fmt.Sprintf("Fig. 5 — per-device energy, %s on %s", row.Workload(), platform.TwoV100Name),
			"plan", "CPU0_J", "CPU1_J", "GPU0_J", "GPU1_J", "total_J", "CPU share %")
		for _, r := range results {
			d := r.Result.Device
			cpu := d["CPU0"] + d["CPU1"]
			tbl.AddRow(r.Plan.String(), float64(d["CPU0"]), float64(d["CPU1"]),
				float64(d["GPU0"]), float64(d["GPU1"]), float64(r.Result.Energy),
				100*float64(cpu)/float64(r.Result.Energy))
		}
		if err := emit(o, tbl); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

// runFig6 compares every plan with and without the paper's CPU cap
// (socket 1 at 48 % TDP = 60 W) on the V100 node, both precisions.
func runFig6(o *options) error {
	cpuCaps := map[int]units.Watts{1: 60}
	var rows []core.TableIIRow
	for _, p := range prec.All {
		for _, op := range []core.Operation{core.GEMM, core.POTRF} {
			row, err := core.LookupTableII(platform.TwoV100Name, op, p)
			if err != nil {
				return err
			}
			rows = append(rows, scaledRow(row, o.scale))
		}
	}
	// The capped and uncapped sweeps differ in options, so they fan out
	// as two pools; rows align index-for-index.  Their trace artifacts
	// cannot collide: TraceCellKey embeds the CPU-cap state.
	plainOpt, cappedOpt := o.sweepOpts(nil), o.sweepOpts(cpuCaps)
	plainSweeps, err := core.ParallelSweep(rows, plainOpt, o.popt())
	if err != nil {
		return err
	}
	cappedSweeps, err := core.ParallelSweep(rows, cappedOpt, o.popt())
	if err != nil {
		return err
	}
	if err := writeSweepTraces(o, rows, plainOpt, plainOpt.Seed, plainSweeps); err != nil {
		return err
	}
	if err := writeSweepTraces(o, rows, cappedOpt, cappedOpt.Seed, cappedSweeps); err != nil {
		return err
	}
	if err := emitFaultSummary(o, rows, plainSweeps); err != nil {
		return err
	}
	if err := emitFaultSummary(o, rows, cappedSweeps); err != nil {
		return err
	}
	for i, row := range rows {
		plain, capped := plainSweeps[i], cappedSweeps[i]
		var defaultRate float64
		for _, r := range plain {
			if r.Plan.AllHigh() {
				defaultRate = float64(r.Result.Rate)
			}
		}
		tbl := report.NewTable(
			fmt.Sprintf("Fig. 6 — CPU1 capped at 60 W, %s on %s", row.Workload(), platform.TwoV100Name),
			"plan", "eff (no CPU cap)", "eff (CPU cap)", "improvement %", "perf Δ% vs uncapped-CPU default")
		for j := range plain {
			base := plain[j].Result
			with := capped[j].Result
			tbl.AddRow(plain[j].Plan.String(), base.Efficiency, with.Efficiency,
				units.PercentChange(base.Efficiency, with.Efficiency),
				units.PercentChange(defaultRate, float64(with.Rate)))
		}
		if err := emit(o, tbl); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

// runFig7 prints the efficiency of every plan across the Fig. 7 tile
// sizes.  On the V100 platform one CPU is capped, as the figure notes.
func runFig7(o *options) error {
	platforms, err := platformsFor(o)
	if err != nil {
		return err
	}
	for _, plat := range platforms {
		var cpuCaps map[int]units.Watts
		if plat == platform.TwoV100Name {
			cpuCaps = map[int]units.Watts{1: 60}
		}
		// One pool per platform: every (op, precision, tile) sweep of the
		// figure fans out together, results consumed in enumeration order.
		var rows []core.TableIIRow
		for _, op := range []core.Operation{core.GEMM, core.POTRF} {
			for _, p := range prec.All {
				row, err := core.LookupTableII(plat, op, p)
				if err != nil {
					return err
				}
				for _, nb := range core.Fig7TileSizes(plat, op) {
					r := row
					r.NB = nb
					rows = append(rows, scaledRow(r, o.scale))
				}
			}
		}
		opt := o.sweepOpts(cpuCaps)
		sweeps, err := core.ParallelSweep(rows, opt, o.popt())
		if err != nil {
			return err
		}
		if err := writeSweepTraces(o, rows, opt, opt.Seed, sweeps); err != nil {
			return err
		}
		if err := emitFaultSummary(o, rows, sweeps); err != nil {
			return err
		}
		next := 0
		for _, op := range []core.Operation{core.GEMM, core.POTRF} {
			for _, p := range prec.All {
				type cell struct {
					plan string
					eff  float64
				}
				byTile := map[int][]cell{}
				var planOrder []string
				for _, nb := range core.Fig7TileSizes(plat, op) {
					results := sweeps[next]
					next++
					planOrder = planOrder[:0]
					for _, pr := range results {
						byTile[nb] = append(byTile[nb], cell{pr.Plan.String(), pr.Result.Efficiency})
						planOrder = append(planOrder, pr.Plan.String())
					}
				}
				tiles := core.Fig7TileSizes(plat, op)
				sort.Ints(tiles)
				headers := []string{"plan"}
				for _, nb := range tiles {
					headers = append(headers, fmt.Sprintf("Nt=%d", nb))
				}
				tbl := report.NewTable(
					fmt.Sprintf("Fig. 7 — Gflop/s/W per tile size, %s%s on %s", p.BLASPrefix(), op, plat),
					headers...)
				for i, plan := range planOrder {
					cells := []interface{}{plan}
					for _, nb := range tiles {
						cells = append(cells, byTile[nb][i].eff)
					}
					tbl.AddRow(cells...)
				}
				if err := emit(o, tbl); err != nil {
					return err
				}
				fmt.Println()
			}
		}
	}
	return nil
}
